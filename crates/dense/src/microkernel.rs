//! Register-blocked microkernel and the packed-panel GEMM driver.
//!
//! This is the crate's hot path: a BLIS-style three-level blocking scheme
//!
//! ```text
//! for jc in 0..n  step NC          // B column panel  (streams through L3)
//!   for pc in 0..k  step KC        // pack B[pc..pc+KC, jc..jc+NC]
//!     for ic in 0..m  step MC      // pack A[ic..ic+MC, pc..pc+KC]  (fits L2)
//!       for jr in 0..NC step NR    // micro-panel of packed B
//!         for ir in 0..MC step MR  // micro-panel of packed A
//!           C[MR×NR] += Apanel · Bpanel   // the microkernel, registers only
//! ```
//!
//! driving an `MR×NR` register tile over panels packed by [`crate::pack`].
//! The packed layouts make every `k`-step of the microkernel two contiguous
//! loads, which is what lets the compiler keep the `MR×NR` accumulator in
//! vector registers.
//!
//! ## Tuning knobs
//!
//! | knob | default | meaning |
//! |------|---------|---------|
//! | `MR` | 4  | microkernel rows (one accumulator column of SIMD lanes) |
//! | `NR` | 8  | microkernel columns (two 4-wide SIMD vectors)  |
//! | `MC` | 128 | rows of the packed A block — `MC·KC` doubles ≈ ¼ L2 |
//! | `KC` | 256 | shared inner dimension of both packed blocks |
//! | `NC` | 1024 | columns of the packed B block — `KC·NC` doubles ≈ L3 share |
//!
//! `MC` must be a multiple of `MR` and `NC` a multiple of `NR` (checked at
//! compile time below).  See `crates/dense/README.md` for how to re-run the
//! kernel benches after changing them.

use crate::matrix::{MatMut, MatRef};
use crate::pack::{op_dims, op_strides, pack_a, pack_b, with_gemm_scratch, with_packed_a, PackedA};
use crate::threads;
#[cfg(target_arch = "x86_64")]
use std::sync::OnceLock;

/// Microkernel tile rows.
pub const MR: usize = 4;
/// Microkernel tile columns.
pub const NR: usize = 8;
/// Row-blocking of the packed `A` block.
pub const MC: usize = 128;
/// Inner-dimension blocking shared by the packed `A` and `B` blocks.
pub const KC: usize = 256;
/// Column-blocking of the packed `B` block.
pub const NC: usize = 1024;

const _: () = assert!(MC.is_multiple_of(MR), "MC must be a multiple of MR");
const _: () = assert!(NC.is_multiple_of(NR), "NC must be a multiple of NR");

/// Below this many multiply–adds the panel-packing overhead outweighs its
/// cache benefits and [`gemm_accumulate`] falls back to a simple loop.
const PACK_THRESHOLD: usize = 32 * 32 * 32;

/// `C += alpha · op(A) · op(B)` on borrowed views, where `a_trans` /
/// `b_trans` select `op(X) = Xᵀ` — implemented by walking the stored
/// operand with swapped strides during packing (see [`crate::pack`]), so a
/// transposed operand is never materialized, in scratch or anywhere else.
///
/// `threads` is the worker budget: with more than one worker (and a product
/// big enough to be packed, with enough column panels to split) the
/// multithreaded driver partitions `C` by columns across the pool; otherwise
/// the sequential kernel runs on the calling thread.  All paths produce
/// **bitwise-identical** results — to each other *and* to the same product
/// on materialized transposes: the packed buffers hold identical values
/// either way, and the per-element accumulation order (`pc` blocks
/// ascending, `k` ascending within each tile) depends on neither the column
/// partitioning nor the operand storage order.
///
/// Callers must pre-validate conceptual dimensions (`op(a): m×k`,
/// `op(b): k×n`, `c: m×n`).
pub(crate) fn gemm_views_accumulate_opt(
    alpha: f64,
    a: MatRef<'_>,
    a_trans: bool,
    b: MatRef<'_>,
    b_trans: bool,
    c: &mut MatMut<'_>,
    threads: usize,
) {
    let (m, kdim) = op_dims(a, a_trans);
    let n = op_dims(b, b_trans).1;
    debug_assert_eq!(kdim, op_dims(b, b_trans).0);
    debug_assert_eq!((m, n), c.dims());
    if m == 0 || n == 0 || kdim == 0 || alpha == 0.0 {
        return;
    }
    let madds = m.saturating_mul(n).saturating_mul(kdim);
    let parallel = threads > 1 && madds >= PACK_THRESHOLD;
    if parallel && n >= 2 * NR {
        gemm_parallel(alpha, a, a_trans, b, b_trans, c, threads);
    } else if parallel && m >= 2 * MR {
        // Tall-skinny product: too few column panels to split, so partition
        // the `ic` (row) dimension of `A`/`C` instead.
        gemm_parallel_rows(alpha, a, a_trans, b, b_trans, c, threads);
    } else {
        let (ai, ak) = op_strides(a, a_trans);
        let (bk, bj) = op_strides(b, b_trans);
        // SAFETY: the views describe in-bounds blocks of live allocations
        // with the dimensions checked above, and `c` is a mutable borrow so
        // it cannot alias `a` or `b`.
        unsafe {
            gemm_accumulate(
                m,
                n,
                kdim,
                alpha,
                a.as_ptr(),
                ai,
                ak,
                b.as_ptr(),
                bk,
                bj,
                c.as_mut_ptr(),
                c.stride(),
            );
        }
    }
}

/// The multithreaded packed driver: packs all of `op(A)` once (shared
/// read-only by every worker), splits `C` and `op(B)` into per-worker
/// column chunks on `NR`-panel boundaries via [`MatMut::split_cols_at_mut`],
/// and runs one worker per chunk on the [`threads`] pool.  Each worker
/// packs its own `B` panels into its thread-local scratch, so the only
/// shared state is the immutable packed `A`.
fn gemm_parallel(
    alpha: f64,
    a: MatRef<'_>,
    a_trans: bool,
    b: MatRef<'_>,
    b_trans: bool,
    c: &mut MatMut<'_>,
    threads: usize,
) {
    let kdim = op_dims(a, a_trans).1;
    let n = op_dims(b, b_trans).1;
    let _region = obs::span_with("dense", "gemm_parallel", "threads", threads as u64);
    with_packed_a(alpha, a, a_trans, |apack| {
        let chunks = panel_chunks(n, NR, threads);
        let mut jobs = Vec::with_capacity(chunks.len());
        let mut rest = c.reborrow();
        for (w, (j0, chunk_cols)) in chunks.into_iter().enumerate() {
            let (chunk, tail) = rest.split_cols_at_mut(chunk_cols);
            rest = tail;
            // Columns `j0 ..` of `op(B)` are rows `j0 ..` of a transposed
            // stored `b`.
            let b_chunk = if b_trans {
                b.subview(j0, 0, chunk_cols, kdim)
            } else {
                b.subview(0, j0, kdim, chunk_cols)
            };
            jobs.push(move || {
                let _worker = obs::span_with("dense", "gemm_worker", "worker", w as u64);
                gemm_chunk_shared_a(apack, b_chunk, b_trans, chunk)
            });
        }
        threads::join_all(jobs);
    });
}

/// Splits `len` items grouped into `panel`-sized units across at most
/// `workers` contiguous chunks, returning each chunk's `(start, len)`.  The
/// first `panels % workers` chunks take one extra panel; only the last chunk
/// may end on a ragged (partial) panel.  Shared by both parallel GEMM
/// drivers so the column and row partitionings cannot drift apart.
fn panel_chunks(len: usize, panel: usize, workers: usize) -> Vec<(usize, usize)> {
    let panels = len.div_ceil(panel);
    let workers = workers.min(panels);
    let base = panels / workers;
    let extra = panels % workers;
    let mut chunks = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let chunk_panels = base + usize::from(w < extra);
        let chunk_len = (chunk_panels * panel).min(len - start);
        chunks.push((start, chunk_len));
        start += chunk_len;
    }
    chunks
}

/// One worker's share of the multithreaded GEMM: the full `(jc, pc, ic)`
/// loop nest over a column chunk of `op(B)`/`C`, reading `A` blocks from the
/// shared pack and packing `B` panels into this worker's thread-local
/// scratch.  The loop order matches the sequential [`gemm_packed`], which is
/// what keeps the parallel result bitwise identical to the sequential one.
fn gemm_chunk_shared_a(apack: &PackedA<'_>, b: MatRef<'_>, b_trans: bool, mut c: MatMut<'_>) {
    let macro_kernel = select_macro_kernel();
    let (m, n) = c.dims();
    let kdim = op_dims(b, b_trans).0;
    let c_rs = c.stride();
    let c_ptr = c.as_mut_ptr();
    let (bk, bj) = op_strides(b, b_trans);
    let b_ptr = b.as_ptr();
    // Pack-vs-microkernel attribution: accumulated locally and emitted as
    // two counters at chunk end, so the hot loop records no events.  When
    // tracing is off the only residue is a branch on a local bool.
    let tracing = obs::enabled();
    let mut pack_ns = 0u64;
    let mut kernel_ns = 0u64;
    with_gemm_scratch(|_, bpack| {
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            let mut pc_idx = 0;
            while pc < kdim {
                let kc = KC.min(kdim - pc);
                // SAFETY: `b` and `c` are live in-bounds views with the
                // strides captured above; the conceptual `kc×nc` block of
                // `op(b)` at `(pc, jc)` is valid for reads at `(bk, bj)`,
                // the `mc×nc` blocks of `c` are valid for writes, and `c`
                // is exclusively owned by this worker (disjoint column
                // chunks via `split_cols_at_mut`).
                unsafe {
                    let t0 = if tracing { obs::now_ns() } else { 0 };
                    pack_b(b_ptr.add(pc * bk + jc * bj), bk, bj, kc, nc, bpack);
                    let t1 = if tracing { obs::now_ns() } else { 0 };
                    let mut ic = 0;
                    let mut ic_idx = 0;
                    while ic < m {
                        let mc = MC.min(m - ic);
                        macro_kernel(
                            mc,
                            nc,
                            kc,
                            apack.block(ic_idx, pc_idx),
                            bpack,
                            c_ptr.add(ic * c_rs + jc),
                            c_rs,
                        );
                        ic += MC;
                        ic_idx += 1;
                    }
                    if tracing {
                        let t2 = obs::now_ns();
                        pack_ns += t1.saturating_sub(t0);
                        kernel_ns += t2.saturating_sub(t1);
                    }
                }
                pc += KC;
                pc_idx += 1;
            }
            jc += NC;
        }
    });
    if tracing {
        obs::counter("dense", "pack_ns", "ns", pack_ns, "", 0);
        obs::counter("dense", "kernel_ns", "ns", kernel_ns, "", 0);
    }
}

/// The row-partitioned multithreaded driver for tall-skinny products
/// (`n < 2·NR`, so the column split of [`gemm_parallel`] has nothing to
/// divide): `C` and `A` are split into per-worker row chunks on `MR`-panel
/// boundaries via [`MatMut::split_rows_at_mut`], and each worker runs the
/// full sequential packed loop nest ([`gemm_packed`]) over its chunk,
/// packing its own `A` rows and (small) `B` panels into thread-local
/// scratch.  Per element of `C` the accumulation order — `pc` blocks
/// ascending, `k` ascending within each tile — does not depend on where the
/// row partition starts, so the result stays bitwise identical to the
/// sequential packed kernel.
fn gemm_parallel_rows(
    alpha: f64,
    a: MatRef<'_>,
    a_trans: bool,
    b: MatRef<'_>,
    b_trans: bool,
    c: &mut MatMut<'_>,
    threads: usize,
) {
    let (m, kdim) = op_dims(a, a_trans);
    let _region = obs::span_with("dense", "gemm_parallel_rows", "threads", threads as u64);
    let chunks = panel_chunks(m, MR, threads);
    let mut jobs = Vec::with_capacity(chunks.len());
    let mut rest = c.reborrow();
    for (w, (i0, chunk_rows)) in chunks.into_iter().enumerate() {
        let (chunk, tail) = rest.split_rows_at_mut(chunk_rows);
        rest = tail;
        // Rows `i0 ..` of `op(A)` are columns `i0 ..` of a transposed
        // stored `a`.
        let a_chunk = if a_trans {
            a.subview(0, i0, kdim, chunk_rows)
        } else {
            a.subview(i0, 0, chunk_rows, kdim)
        };
        jobs.push(move || {
            let _worker = obs::span_with("dense", "gemm_worker", "worker", w as u64);
            gemm_chunk_rows(alpha, a_chunk, a_trans, b, b_trans, chunk)
        });
    }
    threads::join_all(jobs);
}

/// One worker's share of the row-partitioned GEMM: the sequential packed
/// driver over this worker's row chunk.  Always the packed path (never
/// [`gemm_small`]) so a chunk falling under the pack threshold cannot
/// diverge bitwise from the sequential whole-matrix run, which took the
/// packed path to begin with.
fn gemm_chunk_rows(
    alpha: f64,
    a: MatRef<'_>,
    a_trans: bool,
    b: MatRef<'_>,
    b_trans: bool,
    mut c: MatMut<'_>,
) {
    let (m, kdim) = op_dims(a, a_trans);
    let n = op_dims(b, b_trans).1;
    let (ai, ak) = op_strides(a, a_trans);
    let (bk, bj) = op_strides(b, b_trans);
    // SAFETY: the views describe live in-bounds blocks with the strides they
    // report; `c` is this worker's exclusively-owned row chunk (disjoint via
    // `split_rows_at_mut`), so the written region cannot overlap the blocks
    // read through `a` and `b`.
    unsafe {
        gemm_packed(
            m,
            n,
            kdim,
            alpha,
            a.as_ptr(),
            ai,
            ak,
            b.as_ptr(),
            bk,
            bj,
            c.as_mut_ptr(),
            c.stride(),
        );
    }
}

/// `C[m×n] += alpha · A[m×k] · B[k×n]` on raw strided storage, choosing the
/// packed path for large products and a register-blocked loop for small
/// ones.  Elements are addressed as `A[i, k] = a + i·ai + k·ak` and
/// `B[k, j] = b + k·bk + j·bj`, so `(stride, 1)` reads an operand as
/// stored and `(1, stride)` reads its transpose in place.
///
/// # Safety
/// * `a` must be valid for reads of an `m×kdim` block at strides `(ai, ak)`;
/// * `b` must be valid for reads of a `kdim×n` block at strides `(bk, bj)`;
/// * `c` must be valid for reads and writes of an `m×n` block at row stride
///   `c_rs`;
/// * the `m×n` region written through `c` must not overlap the regions read
///   through `a` or `b` (the blocks may belong to the same allocation, e.g.
///   disjoint column ranges of one matrix).
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
pub(crate) unsafe fn gemm_accumulate(
    m: usize,
    n: usize,
    kdim: usize,
    alpha: f64,
    a: *const f64,
    ai: usize,
    ak: usize,
    b: *const f64,
    bk: usize,
    bj: usize,
    c: *mut f64,
    c_rs: usize,
) {
    if m == 0 || n == 0 || kdim == 0 || alpha == 0.0 {
        return;
    }
    if m * n * kdim < PACK_THRESHOLD {
        gemm_small(m, n, kdim, alpha, a, ai, ak, b, bk, bj, c, c_rs);
    } else {
        gemm_packed(m, n, kdim, alpha, a, ai, ak, b, bk, bj, c, c_rs);
    }
}

/// The packed-panel driver (see the module docs for the loop structure).
///
/// # Safety
/// Same contract as [`gemm_accumulate`].
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
unsafe fn gemm_packed(
    m: usize,
    n: usize,
    kdim: usize,
    alpha: f64,
    a: *const f64,
    ai: usize,
    ak: usize,
    b: *const f64,
    bk: usize,
    bj: usize,
    c: *mut f64,
    c_rs: usize,
) {
    let macro_kernel = select_macro_kernel();
    // Same pack-vs-microkernel attribution as `gemm_chunk_shared_a`: local
    // accumulators, two counter events at the end, nothing in the hot loop.
    let tracing = obs::enabled();
    let mut pack_ns = 0u64;
    let mut kernel_ns = 0u64;
    with_gemm_scratch(|apack, bpack| {
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < kdim {
                let kc = KC.min(kdim - pc);
                let t0 = if tracing { obs::now_ns() } else { 0 };
                pack_b(b.add(pc * bk + jc * bj), bk, bj, kc, nc, bpack);
                if tracing {
                    pack_ns += obs::now_ns().saturating_sub(t0);
                }
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    let t1 = if tracing { obs::now_ns() } else { 0 };
                    pack_a(alpha, a.add(ic * ai + pc * ak), ai, ak, mc, kc, apack);
                    let t2 = if tracing { obs::now_ns() } else { 0 };
                    macro_kernel(mc, nc, kc, apack, bpack, c.add(ic * c_rs + jc), c_rs);
                    if tracing {
                        let t3 = obs::now_ns();
                        pack_ns += t2.saturating_sub(t1);
                        kernel_ns += t3.saturating_sub(t2);
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
    if tracing {
        obs::counter("dense", "pack_ns", "ns", pack_ns, "", 0);
        obs::counter("dense", "kernel_ns", "ns", kernel_ns, "", 0);
    }
}

/// Signature shared by the macro-kernel instantiations.
type MacroKernelFn = unsafe fn(usize, usize, usize, &[f64], &[f64], *mut f64, usize);

/// Picks the best macro-kernel for this CPU, once per process.
///
/// On x86-64 with AVX2+FMA the kernel is compiled with those features
/// enabled (and uses `mul_add`, which lowers to `vfmadd`); everywhere else
/// the portable mul-then-add version is used.  Setting the
/// `DENSE_FORCE_SCALAR` environment variable (to anything but `0` or the
/// empty string) forces the portable kernel even when AVX2+FMA are
/// available — CI uses this to keep the scalar dispatch branch exercised on
/// AVX2 runners.
fn select_macro_kernel() -> MacroKernelFn {
    #[cfg(target_arch = "x86_64")]
    {
        static KERNEL: OnceLock<MacroKernelFn> = OnceLock::new();
        *KERNEL.get_or_init(|| {
            let forced_scalar = std::env::var("DENSE_FORCE_SCALAR")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            if !forced_scalar && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            {
                macro_kernel_avx2
            } else {
                macro_kernel_portable
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        macro_kernel_portable
    }
}

/// AVX2+FMA instantiation of the macro kernel.
///
/// # Safety
/// Same contract as [`macro_kernel_impl`]; additionally the CPU must support
/// AVX2 and FMA (guaranteed by [`select_macro_kernel`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn macro_kernel_avx2(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
    c: *mut f64,
    c_rs: usize,
) {
    macro_kernel_impl::<true>(mc, nc, kc, apack, bpack, c, c_rs);
}

/// Portable instantiation of the macro kernel.
///
/// # Safety
/// Same contract as [`macro_kernel_impl`].
unsafe fn macro_kernel_portable(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
    c: *mut f64,
    c_rs: usize,
) {
    macro_kernel_impl::<false>(mc, nc, kc, apack, bpack, c, c_rs);
}

/// Drives the microkernel over every `MR×NR` tile of one packed block pair.
///
/// `FMA` selects `mul_add` in the inner loop; it must only be `true` inside
/// a `target_feature(enable = "fma")` context, where it lowers to hardware
/// FMA instead of a libm call.
///
/// # Safety
/// `c` must be valid for reads/writes of the `mc×nc` block at row stride
/// `c_rs`; the packed slices must hold `⌈mc/MR⌉` / `⌈nc/NR⌉` panels of depth
/// `kc`.
#[inline(always)]
unsafe fn macro_kernel_impl<const FMA: bool>(
    mc: usize,
    nc: usize,
    kc: usize,
    apack: &[f64],
    bpack: &[f64],
    c: *mut f64,
    c_rs: usize,
) {
    let mut jr = 0;
    while jr < nc {
        let nr = NR.min(nc - jr);
        let bpanel = &bpack[(jr / NR) * kc * NR..][..kc * NR];
        let mut ir = 0;
        while ir < mc {
            let mr = MR.min(mc - ir);
            let apanel = &apack[(ir / MR) * kc * MR..][..kc * MR];
            let ctile = c.add(ir * c_rs + jr);
            let acc = accumulate_tile::<FMA>(kc, apanel, bpanel);
            if mr == MR && nr == NR {
                for (i, row) in acc.iter().enumerate() {
                    let crow = ctile.add(i * c_rs);
                    for (j, v) in row.iter().enumerate() {
                        *crow.add(j) += v;
                    }
                }
            } else {
                // Edge tile: the panels are zero-padded, so the full product
                // is computed and the write-back masked to the valid region.
                for (i, row) in acc.iter().enumerate().take(mr) {
                    let crow = ctile.add(i * c_rs);
                    for (j, v) in row.iter().enumerate().take(nr) {
                        *crow.add(j) += v;
                    }
                }
            }
            ir += MR;
        }
        jr += NR;
    }
}

/// The `MR×NR` register tile: `Apanel · Bpanel` over `kc` steps.  Each step
/// is one contiguous `MR`-load of packed `A` and one contiguous `NR`-load of
/// packed `B`, so the accumulator stays in vector registers.
#[inline(always)]
fn accumulate_tile<const FMA: bool>(kc: usize, apanel: &[f64], bpanel: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0f64; NR]; MR];
    for k in 0..kc {
        let a = &apanel[k * MR..k * MR + MR];
        let b = &bpanel[k * NR..k * NR + NR];
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                if FMA {
                    acc[i][j] = ai.mul_add(b[j], acc[i][j]);
                } else {
                    acc[i][j] += ai * b[j];
                }
            }
        }
    }
    acc
}

/// Register-blocked i-k-j loop for products too small to be worth packing.
///
/// # Safety
/// Same contract as [`gemm_accumulate`].
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
unsafe fn gemm_small(
    m: usize,
    n: usize,
    kdim: usize,
    alpha: f64,
    a: *const f64,
    ai: usize,
    ak: usize,
    b: *const f64,
    bk: usize,
    bj: usize,
    c: *mut f64,
    c_rs: usize,
) {
    for i in 0..m {
        let arow = a.add(i * ai);
        let crow = c.add(i * c_rs);
        for k in 0..kdim {
            let aik = alpha * *arow.add(k * ak);
            if aik == 0.0 {
                continue;
            }
            let brow = b.add(k * bk);
            for j in 0..n {
                *crow.add(j) += aik * *brow.add(j * bj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// The plain (no-transpose) accumulate the pre-`_opt` tests were
    /// written against.
    fn gemm_views_accumulate(
        alpha: f64,
        a: MatRef<'_>,
        b: MatRef<'_>,
        c: &mut MatMut<'_>,
        threads: usize,
    ) {
        gemm_views_accumulate_opt(alpha, a, false, b, false, c, threads);
    }

    fn accumulate(
        m: usize,
        n: usize,
        kdim: usize,
        alpha: f64,
        a: &Matrix,
        b: &Matrix,
        c: &mut Matrix,
    ) {
        unsafe {
            gemm_accumulate(
                m,
                n,
                kdim,
                alpha,
                a.as_slice().as_ptr(),
                a.cols(),
                1,
                b.as_slice().as_ptr(),
                b.cols(),
                1,
                c.as_mut_slice().as_mut_ptr(),
                n,
            );
        }
    }

    #[test]
    fn packed_matches_small_on_every_edge_shape() {
        // Shapes straddling the MR/NR/MC/KC edges, including ragged tiles.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (33, 40, 35)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 - 11.0);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 41) % 19) as f64 - 9.0);
            let mut c_small = Matrix::zeros(m, n);
            let mut c_packed = Matrix::zeros(m, n);
            unsafe {
                gemm_small(
                    m,
                    n,
                    k,
                    1.5,
                    a.as_slice().as_ptr(),
                    k,
                    1,
                    b.as_slice().as_ptr(),
                    n,
                    1,
                    c_small.as_mut_slice().as_mut_ptr(),
                    n,
                );
                gemm_packed(
                    m,
                    n,
                    k,
                    1.5,
                    a.as_slice().as_ptr(),
                    k,
                    1,
                    b.as_slice().as_ptr(),
                    n,
                    1,
                    c_packed.as_mut_slice().as_mut_ptr(),
                    n,
                );
            }
            assert!(
                c_small.max_abs_diff(&c_packed).unwrap() < 1e-10,
                "mismatch at shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(3, 2, 1.0);
        let mut c = Matrix::filled(2, 2, 10.0);
        accumulate(2, 2, 3, 2.0, &a, &b, &mut c);
        assert_eq!(c, Matrix::filled(2, 2, 16.0));
    }

    #[test]
    fn zero_alpha_is_a_noop() {
        let a = Matrix::filled(2, 2, f64::NAN);
        let b = Matrix::filled(2, 2, f64::NAN);
        let mut c = Matrix::filled(2, 2, 3.0);
        accumulate(2, 2, 2, 0.0, &a, &b, &mut c);
        assert_eq!(c, Matrix::filled(2, 2, 3.0));
    }

    #[test]
    fn parallel_gemm_is_bitwise_identical_to_sequential() {
        // Shapes with ragged NR/MR/KC edges; every worker count must agree
        // with the sequential packed path bit for bit.
        for &(m, k, n) in &[
            (64, 64, 64),
            (97, 130, 121),
            (130, 257, 260),
            (35, 40, 1029),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
            let mut c_seq = Matrix::zeros(m, n);
            gemm_views_accumulate(1.5, a.as_view(), b.as_view(), &mut c_seq.as_view_mut(), 1);
            for threads in [2usize, 3, 4, 7] {
                let mut c_par = Matrix::zeros(m, n);
                gemm_views_accumulate(
                    1.5,
                    a.as_view(),
                    b.as_view(),
                    &mut c_par.as_view_mut(),
                    threads,
                );
                assert!(
                    c_seq == c_par,
                    "parallel GEMM diverged at shape ({m},{k},{n}) with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn transposed_operands_are_bitwise_equal_to_materialized_transposes() {
        // Pack-transposed micro-panels hold the same values a materialized
        // transpose would have produced, and the accumulation order is
        // unchanged — so op(A)/op(B) products must be *bitwise* equal to
        // the plain product on explicitly transposed operands, across the
        // small, packed, column-parallel and row-parallel paths.
        for &(m, k, n) in &[
            (5, 9, 17),     // gemm_small
            (97, 130, 121), // packed + column-parallel
            (512, 257, 4),  // row-parallel (n < 2·NR)
            (35, 40, 1029), // many column panels
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
            let at = a.transpose(); // stored k×m
            let bt = b.transpose(); // stored n×k
            for threads in [1usize, 3, 4] {
                let mut c_ref = Matrix::zeros(m, n);
                gemm_views_accumulate_opt(
                    1.5,
                    a.as_view(),
                    false,
                    b.as_view(),
                    false,
                    &mut c_ref.as_view_mut(),
                    threads,
                );
                let mut c_at = Matrix::zeros(m, n);
                gemm_views_accumulate_opt(
                    1.5,
                    at.as_view(),
                    true,
                    b.as_view(),
                    false,
                    &mut c_at.as_view_mut(),
                    threads,
                );
                assert!(
                    c_ref == c_at,
                    "Aᵀ path diverged at ({m},{k},{n}) with {threads} threads"
                );
                let mut c_bt = Matrix::zeros(m, n);
                gemm_views_accumulate_opt(
                    1.5,
                    a.as_view(),
                    false,
                    bt.as_view(),
                    true,
                    &mut c_bt.as_view_mut(),
                    threads,
                );
                assert!(
                    c_ref == c_bt,
                    "Bᵀ path diverged at ({m},{k},{n}) with {threads} threads"
                );
                let mut c_both = Matrix::zeros(m, n);
                gemm_views_accumulate_opt(
                    1.5,
                    at.as_view(),
                    true,
                    bt.as_view(),
                    true,
                    &mut c_both.as_view_mut(),
                    threads,
                );
                assert!(
                    c_ref == c_both,
                    "AᵀBᵀ path diverged at ({m},{k},{n}) with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn panel_chunks_tile_exactly_on_panel_boundaries() {
        for len in [1usize, 7, 8, 9, 64, 100, 1029] {
            for panel in [4usize, 8] {
                for workers in [1usize, 2, 3, 7, 16] {
                    let chunks = panel_chunks(len, panel, workers);
                    assert!(chunks.len() <= workers.min(len.div_ceil(panel)));
                    let mut expect_start = 0;
                    for (i, &(start, clen)) in chunks.iter().enumerate() {
                        assert_eq!(start, expect_start, "chunks must tile contiguously");
                        assert!(clen > 0);
                        // Interior chunks end on whole-panel boundaries.
                        if i + 1 < chunks.len() {
                            assert_eq!((start + clen) % panel, 0);
                        }
                        expect_start = start + clen;
                    }
                    assert_eq!(expect_start, len, "chunks must cover everything");
                }
            }
        }
    }

    #[test]
    fn parallel_gemm_row_split_is_bitwise_identical_to_sequential() {
        // Tall-skinny shapes: too few column panels for the jc split
        // (n < 2·NR), so the ic (row) partitioning must engage — and agree
        // with the sequential packed kernel bit for bit, including ragged
        // MR/MC/KC edges and non-divisible worker counts.
        for &(m, k, n) in &[(1029, 40, 9), (512, 257, 4), (130, 300, 15), (97, 400, 1)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 17) % 23) as f64 / 23.0 - 0.5);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 7 + j * 41) % 19) as f64 / 19.0 - 0.5);
            let mut c_seq = Matrix::zeros(m, n);
            gemm_views_accumulate(1.5, a.as_view(), b.as_view(), &mut c_seq.as_view_mut(), 1);
            for threads in [2usize, 3, 4, 7] {
                let mut c_par = Matrix::zeros(m, n);
                gemm_views_accumulate(
                    1.5,
                    a.as_view(),
                    b.as_view(),
                    &mut c_par.as_view_mut(),
                    threads,
                );
                assert!(
                    c_seq == c_par,
                    "row-split GEMM diverged at shape ({m},{k},{n}) with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn parallel_gemm_row_split_matches_reference_numerically() {
        let (m, k, n) = (600, 64, 8);
        let a = Matrix::from_fn(m, k, |i, j| ((i * 13 + j) % 29) as f64 / 29.0 - 0.5);
        let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 3) % 31) as f64 / 31.0 - 0.5);
        let mut c = Matrix::zeros(m, n);
        gemm_views_accumulate(2.0, a.as_view(), b.as_view(), &mut c.as_view_mut(), 4);
        let expect = crate::gemm::matmul(&a, &b).scale(2.0);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-10);
    }

    #[test]
    fn parallel_gemm_on_strided_views() {
        // Operate on interior blocks of larger matrices so the chunked
        // column splits run at a stride different from the block width.
        let big_a = Matrix::from_fn(80, 100, |i, j| ((i * 13 + j) % 29) as f64 - 14.0);
        let big_b = Matrix::from_fn(90, 150, |i, j| ((i * 5 + j * 3) % 31) as f64 - 15.0);
        let (m, kdim, n) = (64, 80, 128);
        let mut big_c_seq = Matrix::zeros(70, 140);
        let mut big_c_par = big_c_seq.clone();
        gemm_views_accumulate(
            1.0,
            big_a.view(4, 6, m, kdim),
            big_b.view(2, 8, kdim, n),
            &mut big_c_seq.view_mut(3, 5, m, n),
            1,
        );
        gemm_views_accumulate(
            1.0,
            big_a.view(4, 6, m, kdim),
            big_b.view(2, 8, kdim, n),
            &mut big_c_par.view_mut(3, 5, m, n),
            4,
        );
        assert!(big_c_seq == big_c_par);
        // Nothing outside the target block was written.
        assert_eq!(big_c_par[(0, 0)], 0.0);
        assert_eq!(big_c_par[(69, 139)], 0.0);
        assert_eq!(big_c_par[(2, 5)], 0.0);
    }

    #[test]
    fn strided_subblocks_multiply_correctly() {
        // Multiply interior blocks of larger matrices through raw strides.
        let big_a = Matrix::from_fn(10, 12, |i, j| (i * 12 + j) as f64);
        let big_b = Matrix::from_fn(9, 11, |i, j| (i as f64) - (j as f64));
        let (m, kdim, n) = (4, 5, 6);
        let mut c = Matrix::zeros(m, n);
        unsafe {
            gemm_accumulate(
                m,
                n,
                kdim,
                1.0,
                big_a.as_slice().as_ptr().add(2 * 12 + 3),
                12,
                1,
                big_b.as_slice().as_ptr().add(11 + 2),
                11,
                1,
                c.as_mut_slice().as_mut_ptr(),
                n,
            );
        }
        let a_blk = big_a.block(2, 3, m, kdim);
        let b_blk = big_b.block(1, 2, kdim, n);
        let expect = crate::gemm::matmul(&a_blk, &b_blk);
        assert!(c.max_abs_diff(&expect).unwrap() < 1e-12);
    }
}
