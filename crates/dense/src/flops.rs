//! Flop-count bookkeeping for local kernels.
//!
//! The α–β–γ execution-time model of the paper charges `γ · F` for the `F`
//! floating-point operations a processor performs along the critical path.
//! Every kernel in this crate reports the number of flops it performed so that
//! the distributed algorithms (in the `catrsm` crate) can charge them to the
//! simulated machine's clock.  The counts follow the usual dense
//! linear-algebra conventions (a fused multiply–add counts as two flops).

/// Number of floating-point operations performed by a kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlopCount(pub u64);

impl FlopCount {
    /// Zero flops.
    pub const ZERO: FlopCount = FlopCount(0);

    /// Create a flop count from a raw number of operations.
    pub fn new(count: u64) -> Self {
        FlopCount(count)
    }

    /// The raw count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Sum of two counts.
    pub fn plus(self, other: FlopCount) -> FlopCount {
        FlopCount(self.0 + other.0)
    }
}

impl std::ops::Add for FlopCount {
    type Output = FlopCount;
    fn add(self, rhs: FlopCount) -> FlopCount {
        FlopCount(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for FlopCount {
    fn add_assign(&mut self, rhs: FlopCount) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for FlopCount {
    fn sum<I: Iterator<Item = FlopCount>>(iter: I) -> FlopCount {
        FlopCount(iter.map(|f| f.0).sum())
    }
}

/// Flops of a general `m×k · k×n` matrix multiplication (multiply + add).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> FlopCount {
    FlopCount(2 * m as u64 * k as u64 * n as u64)
}

/// Flops of a triangular solve `L X = B` with `L` of dimension `n` and `k`
/// right-hand sides: `n²` multiply–adds per column.
pub fn trsm_flops(n: usize, k: usize) -> FlopCount {
    FlopCount(n as u64 * n as u64 * k as u64)
}

/// Flops of a triangular matrix inversion of dimension `n` (≈ n³/3).
pub fn tri_inv_flops(n: usize) -> FlopCount {
    FlopCount((n as u64).pow(3) / 3)
}

/// Flops of a triangular times dense multiplication (`n×n` triangular times
/// `n×k` dense): about half of the general product.
pub fn trmm_flops(n: usize, k: usize) -> FlopCount {
    FlopCount(n as u64 * n as u64 * k as u64)
}

/// Flops of a Cholesky factorization of dimension `n` (≈ n³/3).
pub fn cholesky_flops(n: usize) -> FlopCount {
    FlopCount((n as u64).pow(3) / 3)
}

/// Flops of an LU factorization of dimension `n` (≈ 2n³/3).
pub fn lu_flops(n: usize) -> FlopCount {
    FlopCount(2 * (n as u64).pow(3) / 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), FlopCount(48));
        assert_eq!(gemm_flops(0, 3, 4), FlopCount::ZERO);
    }

    #[test]
    fn trsm_flops_formula() {
        assert_eq!(trsm_flops(4, 2), FlopCount(32));
    }

    #[test]
    fn inv_and_factor_flops_scale_cubically() {
        assert!(tri_inv_flops(64).get() > 8 * tri_inv_flops(32).get() / 2);
        assert!(cholesky_flops(100).get() < lu_flops(100).get());
    }

    #[test]
    fn flop_count_arithmetic() {
        let a = FlopCount(3);
        let b = FlopCount(4);
        assert_eq!(a + b, FlopCount(7));
        assert_eq!(a.plus(b), FlopCount(7));
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 7);
        let total: FlopCount = vec![a, b, c].into_iter().sum();
        assert_eq!(total, FlopCount(14));
        assert_eq!(FlopCount::new(5).get(), 5);
        assert_eq!(FlopCount::default(), FlopCount::ZERO);
    }
}
