//! Error type for grid and distribution operations.

use std::fmt;

/// Errors raised by processor-grid and distributed-matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The communicator size does not match the requested grid shape.
    GridSizeMismatch {
        /// Number of ranks in the communicator.
        comm_size: usize,
        /// Product of the requested grid dimensions.
        grid_size: usize,
    },
    /// A matrix dimension is incompatible with the grid or with a divisibility
    /// requirement of an algorithm.
    BadDimensions {
        /// Description of the operation.
        op: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// Two distributed matrices live on different grids / communicators.
    GridMismatch {
        /// Description of the operation.
        op: &'static str,
    },
    /// An error bubbled up from the simulated machine.
    Sim(simnet::SimError),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::GridSizeMismatch {
                comm_size,
                grid_size,
            } => write!(
                f,
                "grid of {grid_size} processors does not fit communicator of size {comm_size}"
            ),
            GridError::BadDimensions { op, reason } => write!(f, "{op}: {reason}"),
            GridError::GridMismatch { op } => {
                write!(f, "{op}: operands are distributed on different grids")
            }
            GridError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<simnet::SimError> for GridError {
    fn from(e: simnet::SimError) -> Self {
        GridError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GridError::GridSizeMismatch {
            comm_size: 4,
            grid_size: 6,
        };
        assert!(e.to_string().contains("6"));
        let e = GridError::BadDimensions {
            op: "subview",
            reason: "not aligned".into(),
        };
        assert!(e.to_string().contains("subview"));
        assert!(GridError::GridMismatch { op: "add" }
            .to_string()
            .contains("different grids"));
        let e: GridError = simnet::SimError::EmptyMachine.into();
        assert!(e.to_string().contains("simulator"));
    }
}
