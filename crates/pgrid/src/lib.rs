//! # `pgrid` — processor grids, cyclic layouts and distributed matrices
//!
//! The algorithms in the paper (Wicky, Solomonik, Hoefler, IPDPS 2017) are
//! formulated on 2D, 3D and 4D processor grids with matrices distributed in a
//! **cyclic** layout: processor `(x, y)` of a `pr × pc` grid owns the matrix
//! entries `A(x : pr : m, y : pc : n)` in the paper's colon notation.  This
//! crate provides those building blocks on top of the simulated machine:
//!
//! * [`Grid2D`] and [`Grid3D`] — Cartesian views over a [`simnet::Communicator`]
//!   with cheap (communication-free) row / column / fiber sub-communicators,
//! * [`DistMatrix`] — a matrix distributed cyclically over a [`Grid2D`], with
//!   construction from / collection to a replicated global matrix, aligned
//!   sub-views (the recursive algorithms split matrices in halves), and
//!   residual helpers,
//! * [`redist`] — generic element remapping between arbitrary layouts using a
//!   Bruck all-to-all-v, the primitive the paper charges as "an all-to-all"
//!   for its layout transposes and redistributions.

pub mod distmat;
pub mod error;
pub mod grid;
pub mod redist;

pub use distmat::DistMatrix;
pub use error::GridError;
pub use grid::{Grid2D, Grid3D};

/// Result alias for grid operations.
pub type Result<T> = std::result::Result<T, GridError>;
