//! Matrices distributed cyclically over a 2D processor grid.
//!
//! Processor `(x, y)` of a `pr × pc` grid owns the entries
//! `A(x : pr : m, y : pc : n)` — the cyclic layout every algorithm in the
//! paper starts from.  The local piece is stored densely as a
//! [`dense::Matrix`]; global row `i` maps to local row `i / pr` on the owner
//! row `i mod pr` (and likewise for columns).
//!
//! Cyclic layouts have the property the recursive algorithms exploit: any
//! aligned sub-range of global indices (offset and length divisible by the
//! grid dimension) is again cyclically distributed over the *same* grid, and
//! its local storage is a contiguous block of the local matrix, so
//! [`DistMatrix::subview`] needs no communication.

use crate::error::GridError;
use crate::grid::Grid2D;
use crate::Result;
use dense::Matrix;
use simnet::coll;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of global indices owned by grid coordinate `coord` out of `procs`
/// for a dimension of `global` indices distributed cyclically.
pub fn cyclic_local_count(global: usize, procs: usize, coord: usize) -> usize {
    if coord >= global {
        0
    } else {
        (global - coord).div_ceil(procs)
    }
}

/// A dense matrix distributed cyclically over a [`Grid2D`].
pub struct DistMatrix {
    grid: Grid2D,
    rows: usize,
    cols: usize,
    local: Matrix,
    /// Lazily computed transposed copy (see [`DistMatrix::transposed`]):
    /// built by one keyed all-to-all on first use and reused for the
    /// lifetime of the matrix, so repeated `Aᵀ` applies redistribute once,
    /// not once per solve.  Invalidated by every mutating accessor.
    transpose_cache: OnceLock<Box<DistMatrix>>,
    /// How many transpose redistributions this matrix has actually run —
    /// observable through [`DistMatrix::transpose_count`], so tests can
    /// assert the cache is reused rather than re-communicated per solve.
    transposes: AtomicUsize,
    /// Lazily computed copy with the diagonal overwritten by ones (see
    /// [`DistMatrix::unit_diagonal`]): built locally on first use so
    /// repeated unit-diagonal solves against the same operand do not copy
    /// the whole local piece per solve.  Invalidated alongside the
    /// transpose cache by every mutating accessor.
    unit_diag_cache: OnceLock<Box<DistMatrix>>,
    /// How many unit-diagonal overlays were actually materialised —
    /// observable through [`DistMatrix::unit_overlay_count`].
    unit_overlays: AtomicUsize,
}

impl Clone for DistMatrix {
    /// Clones the matrix *and* its cached transpose (re-running the
    /// all-to-all for an identical matrix would be wasted communication);
    /// the clone's transpose count starts fresh.
    fn clone(&self) -> DistMatrix {
        let transpose_cache = OnceLock::new();
        if let Some(t) = self.transpose_cache.get() {
            let _ = transpose_cache.set(t.clone());
        }
        let unit_diag_cache = OnceLock::new();
        if let Some(u) = self.unit_diag_cache.get() {
            let _ = unit_diag_cache.set(u.clone());
        }
        DistMatrix {
            grid: self.grid.clone(),
            rows: self.rows,
            cols: self.cols,
            local: self.local.clone(),
            transpose_cache,
            transposes: AtomicUsize::new(0),
            unit_diag_cache,
            unit_overlays: AtomicUsize::new(0),
        }
    }
}

impl DistMatrix {
    /// Internal constructor: wraps a local piece with fresh caches.
    fn wrap(grid: Grid2D, rows: usize, cols: usize, local: Matrix) -> DistMatrix {
        DistMatrix {
            grid,
            rows,
            cols,
            local,
            transpose_cache: OnceLock::new(),
            transposes: AtomicUsize::new(0),
            unit_diag_cache: OnceLock::new(),
            unit_overlays: AtomicUsize::new(0),
        }
    }

    /// Create a distributed matrix filled with zeros.
    pub fn zeros(grid: &Grid2D, rows: usize, cols: usize) -> Self {
        let lr = cyclic_local_count(rows, grid.rows(), grid.my_row());
        let lc = cyclic_local_count(cols, grid.cols(), grid.my_col());
        DistMatrix::wrap(grid.clone(), rows, cols, Matrix::zeros(lr, lc))
    }

    /// Create a distributed matrix from a generating function of the global
    /// indices (no communication; every rank fills its own entries).
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(
        grid: &Grid2D,
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let pr = grid.rows();
        let pc = grid.cols();
        let (x, y) = grid.my_coords();
        let lr = cyclic_local_count(rows, pr, x);
        let lc = cyclic_local_count(cols, pc, y);
        let local = Matrix::from_fn(lr, lc, |li, lj| f(li * pr + x, lj * pc + y));
        DistMatrix::wrap(grid.clone(), rows, cols, local)
    }

    /// Distribute a replicated global matrix: every rank extracts its cyclic
    /// piece locally (no communication).  All ranks must pass the same matrix.
    pub fn from_global(grid: &Grid2D, global: &Matrix) -> Self {
        let (x, y) = grid.my_coords();
        let local = global.strided_block(x, grid.rows(), y, grid.cols());
        DistMatrix::wrap(grid.clone(), global.rows(), global.cols(), local)
    }

    /// Wrap an existing local piece (must already have the correct local
    /// dimensions for this rank).
    pub fn from_local(grid: &Grid2D, rows: usize, cols: usize, local: Matrix) -> Result<Self> {
        let lr = cyclic_local_count(rows, grid.rows(), grid.my_row());
        let lc = cyclic_local_count(cols, grid.cols(), grid.my_col());
        if local.dims() != (lr, lc) {
            return Err(GridError::BadDimensions {
                op: "DistMatrix::from_local",
                reason: format!(
                    "local piece is {}x{}, expected {}x{}",
                    local.rows(),
                    local.cols(),
                    lr,
                    lc
                ),
            });
        }
        Ok(DistMatrix::wrap(grid.clone(), rows, cols, local))
    }

    /// Global number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Global number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Global `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The grid the matrix is distributed over.
    pub fn grid(&self) -> &Grid2D {
        &self.grid
    }

    /// This rank's local piece.
    pub fn local(&self) -> &Matrix {
        &self.local
    }

    /// Mutable access to this rank's local piece.
    ///
    /// Invalidates the cached transpose (see [`DistMatrix::transposed`]):
    /// a stale `Aᵀ` after an in-place edit would be a silent correctness
    /// bug, so every mutating accessor drops it.
    pub fn local_mut(&mut self) -> &mut Matrix {
        self.invalidate_transpose();
        &mut self.local
    }

    /// The cached transpose of this matrix, built on first use (one keyed
    /// all-to-all redistribution — see [`crate::redist::transpose`]) and
    /// reused for the lifetime of the matrix: the analyze-once pattern the
    /// sparse crate's `SparseTri::transposed` applies locally, here applied
    /// to communication.  Repeated `Aᵀ·X = B` solves — the backward
    /// substitution of every Cholesky/LU application — redistribute once,
    /// not once per solve.
    ///
    /// Like every redistribution this is a **collective**: all ranks must
    /// reach their first `transposed()` call on the same matrix together
    /// (guaranteed under the SPMD usage the simulated machine enforces).
    /// Mutating accessors ([`DistMatrix::local_mut`],
    /// [`DistMatrix::set_subview`], the arithmetic updates) invalidate the
    /// cache.
    pub fn transposed(&self) -> &DistMatrix {
        self.try_transposed()
            .expect("transpose redistribution failed")
    }

    /// Fallible form of [`DistMatrix::transposed`]: returns the cached
    /// transpose, running (and caching) the redistribution on first use, and
    /// propagates transport errors (fault-injected timeouts, rank failures)
    /// instead of panicking.  Library code paths use this form.
    pub fn try_transposed(&self) -> Result<&DistMatrix> {
        if let Some(t) = self.transpose_cache.get() {
            return Ok(t);
        }
        let _span = obs::span_with("pgrid", "transpose_redist", "rows", self.rows as u64);
        // The endpoint is per-rank single-threaded, so compute-then-set
        // cannot race; a concurrent set is impossible here.
        let t = Box::new(crate::redist::transpose(self, true)?);
        self.transposes.fetch_add(1, Ordering::Relaxed);
        let _ = self.transpose_cache.set(t);
        Ok(self
            .transpose_cache
            .get()
            .expect("cache populated on the line above"))
    }

    /// How many transpose redistributions this matrix has run (0 before the
    /// first [`DistMatrix::transposed`] call, and 1 until the next
    /// invalidating mutation).
    pub fn transpose_count(&self) -> usize {
        self.transposes.load(Ordering::Relaxed)
    }

    /// A copy of this matrix whose diagonal entries are overwritten with 1
    /// (the operand actually factored when `Diag::Unit` solves treat the
    /// stored diagonal as implicit).  Built **locally** — no communication —
    /// on first use and cached for the lifetime of the matrix, so repeated
    /// unit-diagonal solves stop copying the operand once per solve.
    /// Mutating accessors invalidate the cache together with the transpose.
    pub fn unit_diagonal(&self) -> &DistMatrix {
        if let Some(u) = self.unit_diag_cache.get() {
            return u;
        }
        let _span = obs::span_with("pgrid", "unit_overlay", "rows", self.rows as u64);
        let mut local = self.local.clone();
        let pr = self.grid.rows();
        let pc = self.grid.cols();
        let (x, y) = self.grid.my_coords();
        for li in 0..local.rows() {
            let gi = li * pr + x;
            for lj in 0..local.cols() {
                if gi == lj * pc + y {
                    local[(li, lj)] = 1.0;
                }
            }
        }
        self.unit_overlays.fetch_add(1, Ordering::Relaxed);
        let _ = self.unit_diag_cache.set(Box::new(DistMatrix::wrap(
            self.grid.clone(),
            self.rows,
            self.cols,
            local,
        )));
        self.unit_diag_cache
            .get()
            .expect("cache populated on the line above")
    }

    /// How many unit-diagonal overlays this matrix has materialised (0 before
    /// the first [`DistMatrix::unit_diagonal`] call, and 1 until the next
    /// invalidating mutation).
    pub fn unit_overlay_count(&self) -> usize {
        self.unit_overlays.load(Ordering::Relaxed)
    }

    /// Drops the cached transpose and unit-diagonal overlay (called by every
    /// mutating accessor).
    fn invalidate_transpose(&mut self) {
        self.transpose_cache = OnceLock::new();
        self.unit_diag_cache = OnceLock::new();
    }

    /// Global row index of local row `li` on this rank.
    pub fn global_row(&self, li: usize) -> usize {
        li * self.grid.rows() + self.grid.my_row()
    }

    /// Global column index of local column `lj` on this rank.
    pub fn global_col(&self, lj: usize) -> usize {
        lj * self.grid.cols() + self.grid.my_col()
    }

    /// Grid coordinates of the owner of global entry `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> (usize, usize) {
        (i % self.grid.rows(), j % self.grid.cols())
    }

    /// Collect the full matrix on every rank (allgather of all local pieces).
    ///
    /// Panics if the underlying collective fails; library code paths under
    /// fault injection use [`DistMatrix::try_to_global`] instead.
    pub fn to_global(&self) -> Matrix {
        self.try_to_global().expect("to_global collective failed")
    }

    /// Fallible form of [`DistMatrix::to_global`]: propagates transport
    /// errors (fault-injected timeouts, rank failures) as typed errors.
    pub fn try_to_global(&self) -> Result<Matrix> {
        let _span = obs::span_with("pgrid", "to_global", "rows", self.rows as u64);
        let pieces = coll::allgatherv(self.grid.comm(), self.local.as_slice())?;
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (rank, piece) in pieces.into_iter().enumerate() {
            let (x, y) = self.grid.coords_of(rank);
            let lr = cyclic_local_count(self.rows, self.grid.rows(), x);
            let lc = cyclic_local_count(self.cols, self.grid.cols(), y);
            if lr == 0 || lc == 0 {
                continue;
            }
            let block = Matrix::from_vec(lr, lc, piece).map_err(|e| GridError::BadDimensions {
                op: "to_global",
                reason: e.to_string(),
            })?;
            out.set_strided_block(x, self.grid.rows(), y, self.grid.cols(), &block);
        }
        Ok(out)
    }

    /// Extract the aligned sub-matrix `A[r0 .. r0+nr, c0 .. c0+nc]` as a new
    /// distributed matrix on the same grid, without communication.
    ///
    /// Alignment requirement (satisfied by the paper's recursive splits):
    /// `r0`, `nr` must be divisible by the number of grid rows, and `c0`, `nc`
    /// by the number of grid columns (or reach exactly to the matrix edge).
    pub fn subview(&self, r0: usize, nr: usize, c0: usize, nc: usize) -> Result<DistMatrix> {
        let pr = self.grid.rows();
        let pc = self.grid.cols();
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(GridError::BadDimensions {
                op: "subview",
                reason: format!(
                    "requested rows {r0}+{nr}, cols {c0}+{nc} exceed {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        let row_aligned = r0.is_multiple_of(pr) && (nr.is_multiple_of(pr) || r0 + nr == self.rows);
        let col_aligned = c0.is_multiple_of(pc) && (nc.is_multiple_of(pc) || c0 + nc == self.cols);
        if !row_aligned || !col_aligned {
            return Err(GridError::BadDimensions {
                op: "subview",
                reason: format!(
                    "range rows [{r0}, {}) cols [{c0}, {}) is not aligned to the {}x{} grid",
                    r0 + nr,
                    c0 + nc,
                    pr,
                    pc
                ),
            });
        }
        let (x, y) = self.grid.my_coords();
        let lr0 = r0 / pr;
        let lc0 = c0 / pc;
        let lr = cyclic_local_count(nr, pr, x);
        let lc = cyclic_local_count(nc, pc, y);
        let local = self.local.block(lr0, lc0, lr, lc);
        Ok(DistMatrix::wrap(self.grid.clone(), nr, nc, local))
    }

    /// Overwrite the aligned sub-matrix starting at `(r0, c0)` with `sub`
    /// (same alignment rules as [`DistMatrix::subview`], no communication).
    pub fn set_subview(&mut self, r0: usize, c0: usize, sub: &DistMatrix) -> Result<()> {
        let pr = self.grid.rows();
        let pc = self.grid.cols();
        let (nr, nc) = sub.dims();
        if !r0.is_multiple_of(pr) || !c0.is_multiple_of(pc) {
            return Err(GridError::BadDimensions {
                op: "set_subview",
                reason: format!("offset ({r0}, {c0}) is not aligned to the {pr}x{pc} grid"),
            });
        }
        if r0 + nr > self.rows || c0 + nc > self.cols {
            return Err(GridError::BadDimensions {
                op: "set_subview",
                reason: "sub-matrix does not fit".to_string(),
            });
        }
        self.invalidate_transpose();
        self.local.set_block(r0 / pr, c0 / pc, sub.local());
        Ok(())
    }

    /// In-place `self ← self - other` (same grid, same dimensions).
    pub fn sub_assign(&mut self, other: &DistMatrix) -> Result<()> {
        self.check_conformal(other, "sub_assign")?;
        self.invalidate_transpose();
        self.local
            .axpy(-1.0, &other.local)
            .map_err(|e| GridError::BadDimensions {
                op: "sub_assign",
                reason: e.to_string(),
            })
    }

    /// In-place `self ← self + other` (same grid, same dimensions).
    pub fn add_assign(&mut self, other: &DistMatrix) -> Result<()> {
        self.check_conformal(other, "add_assign")?;
        self.invalidate_transpose();
        self.local
            .axpy(1.0, &other.local)
            .map_err(|e| GridError::BadDimensions {
                op: "add_assign",
                reason: e.to_string(),
            })
    }

    /// Distributed relative Frobenius difference `‖A − B‖_F / max(‖B‖_F, 1)`
    /// computed with one allreduce (identical result on every rank).
    pub fn rel_diff(&self, other: &DistMatrix) -> Result<f64> {
        self.check_conformal(other, "rel_diff")?;
        let mut diff_sq = 0.0;
        let mut ref_sq = 0.0;
        for (a, b) in self
            .local
            .as_slice()
            .iter()
            .zip(other.local.as_slice().iter())
        {
            diff_sq += (a - b) * (a - b);
            ref_sq += b * b;
        }
        let sums = coll::allreduce(self.grid.comm(), &[diff_sq, ref_sq], coll::ReduceOp::Sum)?;
        Ok(sums[0].sqrt() / sums[1].sqrt().max(1.0))
    }

    fn check_conformal(&self, other: &DistMatrix, op: &'static str) -> Result<()> {
        if self.dims() != other.dims() {
            return Err(GridError::BadDimensions {
                op,
                reason: format!("{:?} vs {:?}", self.dims(), other.dims()),
            });
        }
        if self.grid.rows() != other.grid.rows() || self.grid.cols() != other.grid.cols() {
            return Err(GridError::GridMismatch { op });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Machine, MachineParams};

    fn with_grid<T: Send>(
        p: usize,
        pr: usize,
        pc: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> Vec<T> {
        Machine::new(p, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, pr, pc).unwrap();
                f(&grid)
            })
            .unwrap()
            .results
    }

    fn test_matrix(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| (i * cols + j) as f64)
    }

    #[test]
    fn cyclic_counts_cover_everything() {
        for global in [0usize, 1, 5, 8, 13] {
            for procs in [1usize, 2, 3, 4, 7] {
                let total: usize = (0..procs)
                    .map(|c| cyclic_local_count(global, procs, c))
                    .sum();
                assert_eq!(total, global, "global={global} procs={procs}");
            }
        }
    }

    #[test]
    fn distribute_collect_round_trip() {
        for (pr, pc, rows, cols) in [
            (2usize, 2usize, 8usize, 8usize),
            (2, 3, 7, 11),
            (1, 4, 5, 12),
            (4, 1, 9, 3),
        ] {
            let global = test_matrix(rows, cols);
            let g2 = global.clone();
            let results = with_grid(pr * pc, pr, pc, move |grid| {
                let dist = DistMatrix::from_global(grid, &g2);
                dist.to_global()
            });
            for r in results {
                assert_eq!(r, global);
            }
        }
    }

    #[test]
    fn from_fn_matches_from_global() {
        let rows = 10;
        let cols = 6;
        let results = with_grid(4, 2, 2, move |grid| {
            let a = DistMatrix::from_fn(grid, rows, cols, |i, j| (i * cols + j) as f64);
            let b = DistMatrix::from_global(grid, &test_matrix(rows, cols));
            a.local().max_abs_diff(b.local()).unwrap()
        });
        assert!(results.into_iter().all(|d| d == 0.0));
    }

    #[test]
    fn local_dims_and_index_maps() {
        let results = with_grid(6, 2, 3, |grid| {
            let dist = DistMatrix::from_global(grid, &test_matrix(7, 8));
            let (x, y) = grid.my_coords();
            // Check every local entry maps back to the right global entry.
            for li in 0..dist.local().rows() {
                for lj in 0..dist.local().cols() {
                    let gi = dist.global_row(li);
                    let gj = dist.global_col(lj);
                    assert_eq!(dist.owner_of(gi, gj), (x, y));
                    assert_eq!(dist.local()[(li, lj)], (gi * 8 + gj) as f64);
                }
            }
            dist.local().dims()
        });
        // Row counts: rows 0..7 over 2 proc rows -> coord 0 gets 4, coord 1 gets 3.
        // Col counts: cols 0..8 over 3 proc cols -> 3, 3, 2.
        assert_eq!(results[0], (4, 3));
        assert_eq!(results[5], (3, 2));
    }

    #[test]
    fn from_local_validates_dims() {
        let results = with_grid(4, 2, 2, |grid| {
            let ok = DistMatrix::from_local(grid, 4, 4, Matrix::zeros(2, 2)).is_ok();
            let bad = DistMatrix::from_local(grid, 4, 4, Matrix::zeros(3, 2)).is_err();
            ok && bad
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn subview_is_consistent_with_global_blocks() {
        let rows = 12;
        let cols = 8;
        let global = test_matrix(rows, cols);
        let g2 = global.clone();
        let results = with_grid(4, 2, 2, move |grid| {
            let dist = DistMatrix::from_global(grid, &g2);
            let sub = dist.subview(4, 6, 2, 4).unwrap();
            sub.to_global()
        });
        let expect = global.block(4, 2, 6, 4);
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn subview_rejects_misaligned_ranges() {
        let results = with_grid(4, 2, 2, |grid| {
            let dist = DistMatrix::zeros(grid, 8, 8);
            let bad_offset = dist.subview(1, 2, 0, 2).is_err();
            let bad_len = dist.subview(0, 3, 0, 2).is_err();
            let too_big = dist.subview(0, 10, 0, 2).is_err();
            let ok_edge = dist.subview(0, 8, 4, 4).is_ok();
            bad_offset && bad_len && too_big && ok_edge
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn set_subview_round_trip() {
        let results = with_grid(4, 2, 2, |grid| {
            let global = test_matrix(8, 8);
            let dist = DistMatrix::from_global(grid, &global);
            let sub = dist.subview(4, 4, 4, 4).unwrap();
            let mut dst = DistMatrix::zeros(grid, 8, 8);
            dst.set_subview(4, 4, &sub).unwrap();
            dst.to_global()
        });
        let mut expect = Matrix::zeros(8, 8);
        expect.set_block(4, 4, &test_matrix(8, 8).block(4, 4, 4, 4));
        for r in results {
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn arithmetic_and_rel_diff() {
        let results = with_grid(4, 2, 2, |grid| {
            let a = DistMatrix::from_fn(grid, 6, 6, |i, j| (i + j) as f64);
            let b = DistMatrix::from_fn(grid, 6, 6, |i, j| (i * j) as f64);
            let mut c = a.clone();
            c.add_assign(&b).unwrap();
            c.sub_assign(&b).unwrap();
            let zero_diff = c.rel_diff(&a).unwrap();
            let nonzero_diff = a.rel_diff(&b).unwrap();
            (zero_diff, nonzero_diff)
        });
        for (z, nz) in results {
            assert!(z < 1e-14);
            assert!(nz > 1e-3);
        }
    }

    #[test]
    fn transposed_is_cached_reused_and_invalidated() {
        let results = with_grid(4, 2, 2, |grid| {
            let a = DistMatrix::from_fn(grid, 6, 4, |i, j| (i * 4 + j) as f64);
            // First use runs the redistribution; the second reuses it.
            let t1 = a.transposed() as *const DistMatrix;
            let correct = a.transposed().to_global() == a.to_global().transpose();
            let t2 = a.transposed() as *const DistMatrix;
            let cached = t1 == t2 && a.transpose_count() == 1;
            // A clone carries the cache without re-communicating.
            let c = a.clone();
            let clone_cached =
                c.transposed().to_global() == a.to_global().transpose() && c.transpose_count() == 0;
            // Mutation invalidates: the transpose is rebuilt, not stale.
            let mut m = a.clone();
            let gi = m.global_row(0);
            let gj = m.global_col(0);
            m.local_mut()[(0, 0)] = 99.0;
            let fresh = m.transposed().to_global()[(gj, gi)] == 99.0;
            correct && cached && clone_cached && fresh
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn unit_diagonal_is_cached_reused_and_invalidated() {
        let results = with_grid(4, 2, 2, |grid| {
            let a = DistMatrix::from_fn(grid, 6, 6, |i, j| (i * 6 + j + 2) as f64);
            // First use materialises the overlay; the second reuses it.
            let u1 = a.unit_diagonal() as *const DistMatrix;
            let g = a.unit_diagonal().to_global();
            let mut correct = true;
            for i in 0..6 {
                for j in 0..6 {
                    let expect = if i == j { 1.0 } else { (i * 6 + j + 2) as f64 };
                    correct &= g[(i, j)] == expect;
                }
            }
            let u2 = a.unit_diagonal() as *const DistMatrix;
            let cached = u1 == u2 && a.unit_overlay_count() == 1;
            // A clone carries the cache without recomputing.
            let c = a.clone();
            let clone_cached = c.unit_diagonal().to_global() == g && c.unit_overlay_count() == 0;
            // Mutation invalidates: off-diagonal edits show through.
            let mut m = a.clone();
            let gi = m.global_row(0);
            let gj = m.global_col(0);
            m.local_mut()[(0, 0)] = 99.0;
            let refreshed =
                m.unit_diagonal().to_global()[(gi, gj)] == if gi == gj { 1.0 } else { 99.0 };
            correct && cached && clone_cached && refreshed
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn conformality_is_checked() {
        let results = with_grid(4, 2, 2, |grid| {
            let a = DistMatrix::zeros(grid, 6, 6);
            let b = DistMatrix::zeros(grid, 4, 6);
            a.rel_diff(&b).is_err()
        });
        assert!(results.into_iter().all(|v| v));
    }
}
