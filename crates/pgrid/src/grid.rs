//! Cartesian processor grids over a communicator.
//!
//! Grids are *views*: they do not own processors, they interpret the ranks of
//! a [`Communicator`] as coordinates.  Creating a grid or any of its
//! sub-communicators performs no communication and charges no cost, because
//! membership is pure rank arithmetic — exactly the situation in the paper,
//! where every processor can compute every grid assignment locally.

use crate::error::GridError;
use crate::Result;
use simnet::Communicator;

/// A 2D (`rows × cols`) view over a communicator, rank-major by rows:
/// rank `r` has coordinates `(r / cols, r % cols)`.
#[derive(Clone)]
pub struct Grid2D {
    comm: Communicator,
    rows: usize,
    cols: usize,
}

impl Grid2D {
    /// Interpret `comm` as a `rows × cols` grid.
    pub fn new(comm: &Communicator, rows: usize, cols: usize) -> Result<Self> {
        if rows * cols != comm.size() {
            return Err(GridError::GridSizeMismatch {
                comm_size: comm.size(),
                grid_size: rows * cols,
            });
        }
        Ok(Grid2D {
            comm: comm.clone(),
            rows,
            cols,
        })
    }

    /// A square `q × q` grid over a communicator of size `q²`.
    pub fn square(comm: &Communicator) -> Result<Self> {
        let q = (comm.size() as f64).sqrt().round() as usize;
        if q * q != comm.size() {
            return Err(GridError::GridSizeMismatch {
                comm_size: comm.size(),
                grid_size: q * q,
            });
        }
        Grid2D::new(comm, q, q)
    }

    /// The underlying communicator (all `rows × cols` processors).
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Number of processor rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of processor columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processors in the grid.
    pub fn size(&self) -> usize {
        self.rows * self.cols
    }

    /// This rank's row coordinate.
    pub fn my_row(&self) -> usize {
        self.comm.rank() / self.cols
    }

    /// This rank's column coordinate.
    pub fn my_col(&self) -> usize {
        self.comm.rank() % self.cols
    }

    /// This rank's `(row, col)` coordinates.
    pub fn my_coords(&self) -> (usize, usize) {
        (self.my_row(), self.my_col())
    }

    /// The communicator-local rank of the processor at `(row, col)`.
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Coordinates of a communicator-local rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.cols, rank % self.cols)
    }

    /// Sub-communicator of this rank's processor row (`cols` members, ordered
    /// by column).
    pub fn row_comm(&self) -> Communicator {
        let row = self.my_row();
        let members: Vec<usize> = (0..self.cols).map(|c| self.rank_of(row, c)).collect();
        self.comm.subgroup(&members).expect("row membership")
    }

    /// Sub-communicator of this rank's processor column (`rows` members,
    /// ordered by row).
    pub fn col_comm(&self) -> Communicator {
        let col = self.my_col();
        let members: Vec<usize> = (0..self.rows).map(|r| self.rank_of(r, col)).collect();
        self.comm.subgroup(&members).expect("column membership")
    }

    /// Sub-communicator of all processors `(r, c)` for which `pred(r, c)` is
    /// true **and** which contains this rank.  `pred` must be a pure function
    /// identical on every rank.  Members are ordered row-major.
    pub fn subgroup_where<F: Fn(usize, usize) -> bool>(&self, pred: F) -> Result<Communicator> {
        let members: Vec<usize> = (0..self.size())
            .filter(|&r| {
                let (row, col) = self.coords_of(r);
                pred(row, col)
            })
            .collect();
        Ok(self.comm.subgroup(&members)?)
    }
}

/// A 3D (`dim0 × dim1 × dim2`) view over a communicator.
///
/// Rank layout is `rank = (x * dim1 + y) * dim2 + z` for coordinates
/// `(x, y, z)`; in the paper's iterative TRSM the grid is `p1 × p1 × p2` with
/// `x, y` indexing the square face holding `L` and `z` indexing the
/// right-hand-side layers.
#[derive(Clone)]
pub struct Grid3D {
    comm: Communicator,
    dims: [usize; 3],
}

impl Grid3D {
    /// Interpret `comm` as a `d0 × d1 × d2` grid.
    pub fn new(comm: &Communicator, d0: usize, d1: usize, d2: usize) -> Result<Self> {
        if d0 * d1 * d2 != comm.size() {
            return Err(GridError::GridSizeMismatch {
                comm_size: comm.size(),
                grid_size: d0 * d1 * d2,
            });
        }
        Ok(Grid3D {
            comm: comm.clone(),
            dims: [d0, d1, d2],
        })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Communicator {
        &self.comm
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// This rank's `(x, y, z)` coordinates.
    pub fn my_coords(&self) -> (usize, usize, usize) {
        self.coords_of(self.comm.rank())
    }

    /// Communicator-local rank of coordinates `(x, y, z)`.
    pub fn rank_of(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.dims[0] && y < self.dims[1] && z < self.dims[2]);
        (x * self.dims[1] + y) * self.dims[2] + z
    }

    /// Coordinates of a communicator-local rank.
    pub fn coords_of(&self, rank: usize) -> (usize, usize, usize) {
        let z = rank % self.dims[2];
        let rest = rank / self.dims[2];
        let y = rest % self.dims[1];
        let x = rest / self.dims[1];
        (x, y, z)
    }

    /// Sub-communicator along `axis` (0, 1 or 2): the processors that share
    /// this rank's coordinates on the other two axes, ordered by the varying
    /// coordinate.
    pub fn axis_comm(&self, axis: usize) -> Communicator {
        assert!(axis < 3, "axis must be 0, 1 or 2");
        let (x, y, z) = self.my_coords();
        let members: Vec<usize> = (0..self.dims[axis])
            .map(|v| match axis {
                0 => self.rank_of(v, y, z),
                1 => self.rank_of(x, v, z),
                _ => self.rank_of(x, y, v),
            })
            .collect();
        self.comm.subgroup(&members).expect("axis membership")
    }

    /// Sub-communicator of the 2D plane obtained by fixing `axis` to this
    /// rank's coordinate on that axis.  Members are ordered with the lower
    /// remaining axis varying slowest.
    pub fn plane_comm(&self, fixed_axis: usize) -> Communicator {
        assert!(fixed_axis < 3, "axis must be 0, 1 or 2");
        let my = self.my_coords();
        let my_arr = [my.0, my.1, my.2];
        let members: Vec<usize> = (0..self.comm.size())
            .filter(|&r| {
                let c = self.coords_of(r);
                let c_arr = [c.0, c.1, c.2];
                c_arr[fixed_axis] == my_arr[fixed_axis]
            })
            .collect();
        self.comm.subgroup(&members).expect("plane membership")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{coll, Machine, MachineParams};

    #[test]
    fn grid2d_rejects_wrong_size() {
        let out = Machine::new(6, MachineParams::unit())
            .run(|comm| {
                let bad = Grid2D::new(comm, 2, 2).is_err();
                let good = Grid2D::new(comm, 2, 3).is_ok();
                let square_bad = Grid2D::square(comm).is_err();
                bad && good && square_bad
            })
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }

    #[test]
    fn grid2d_coordinates_are_consistent() {
        let out = Machine::new(12, MachineParams::unit())
            .run(|comm| {
                let g = Grid2D::new(comm, 3, 4).unwrap();
                let (r, c) = g.my_coords();
                assert_eq!(g.rank_of(r, c), comm.rank());
                assert_eq!(g.coords_of(comm.rank()), (r, c));
                assert_eq!(g.rows(), 3);
                assert_eq!(g.cols(), 4);
                assert_eq!(g.size(), 12);
                (r, c)
            })
            .unwrap();
        assert_eq!(out.results[0], (0, 0));
        assert_eq!(out.results[5], (1, 1));
        assert_eq!(out.results[11], (2, 3));
    }

    #[test]
    fn row_and_column_communicators_sum_correctly() {
        let out = Machine::new(12, MachineParams::unit())
            .run(|comm| {
                let g = Grid2D::new(comm, 3, 4).unwrap();
                let row_sum =
                    coll::allreduce(&g.row_comm(), &[comm.rank() as f64], coll::ReduceOp::Sum)
                        .unwrap()[0];
                let col_sum =
                    coll::allreduce(&g.col_comm(), &[comm.rank() as f64], coll::ReduceOp::Sum)
                        .unwrap()[0];
                (row_sum, col_sum)
            })
            .unwrap();
        // Rank 5 = (1,1): its row is ranks 4..8 (sum 22); its column is ranks 1,5,9 (sum 15).
        assert_eq!(out.results[5], (22.0, 15.0));
        // Rank 0 = (0,0): row 0+1+2+3 = 6, column 0+4+8 = 12.
        assert_eq!(out.results[0], (6.0, 12.0));
    }

    #[test]
    fn subgroup_where_selects_diagonal() {
        let out = Machine::new(9, MachineParams::unit())
            .run(|comm| {
                let g = Grid2D::new(comm, 3, 3).unwrap();
                let (r, c) = g.my_coords();
                if r == c {
                    let diag = g.subgroup_where(|a, b| a == b).unwrap();
                    Some(coll::allreduce(&diag, &[1.0], coll::ReduceOp::Sum).unwrap()[0] as usize)
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(out.results[0], Some(3));
        assert_eq!(out.results[4], Some(3));
        assert_eq!(out.results[8], Some(3));
        assert_eq!(out.results[1], None);
    }

    #[test]
    fn grid3d_coordinates_and_axes() {
        let out = Machine::new(2 * 2 * 3, MachineParams::unit())
            .run(|comm| {
                let g = Grid3D::new(comm, 2, 2, 3).unwrap();
                let (x, y, z) = g.my_coords();
                assert_eq!(g.rank_of(x, y, z), comm.rank());
                assert_eq!(g.dims(), [2, 2, 3]);
                let a0 = g.axis_comm(0).size();
                let a1 = g.axis_comm(1).size();
                let a2 = g.axis_comm(2).size();
                let plane = g.plane_comm(2).size();
                (a0, a1, a2, plane)
            })
            .unwrap();
        for r in out.results {
            assert_eq!(r, (2, 2, 3, 4));
        }
    }

    #[test]
    fn grid3d_axis_comm_sums() {
        let out = Machine::new(8, MachineParams::unit())
            .run(|comm| {
                let g = Grid3D::new(comm, 2, 2, 2).unwrap();
                // Sum of world ranks along the z axis.
                let z_comm = g.axis_comm(2);
                coll::allreduce(&z_comm, &[comm.rank() as f64], coll::ReduceOp::Sum).unwrap()[0]
            })
            .unwrap();
        // (x,y,0) and (x,y,1) are ranks 2*(x*2+y) and 2*(x*2+y)+1.
        for x in 0..2 {
            for y in 0..2 {
                let base = (x * 2 + y) * 2;
                let expect = (base + base + 1) as f64;
                assert_eq!(out.results[base], expect);
                assert_eq!(out.results[base + 1], expect);
            }
        }
    }

    #[test]
    fn grid3d_rejects_wrong_size() {
        let out = Machine::new(7, MachineParams::unit())
            .run(|comm| Grid3D::new(comm, 2, 2, 2).is_err())
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }
}
