//! Generic data redistribution between layouts.
//!
//! The paper's algorithms change data layouts in a few places — the
//! transposes inside the 3D matrix multiplication (Section III), the move of
//! sub-matrices onto smaller processor grids inside the recursive inversion
//! (Section V), and the collection of diagonal blocks onto dedicated
//! sub-grids in the `Diagonal-Inverter` (Section VI-A).  In every case the
//! paper bounds the cost by that of an **all-to-all**:
//! `O(α·log p + β·(volume/p)·log p)` per processor.
//!
//! [`exchange_keyed`] is the corresponding primitive here: every rank hands
//! in `(key, value)` pairs per destination, the pairs are routed with the
//! Bruck all-to-all-v of `simnet::coll` (log p rounds, store-and-forward),
//! and each rank gets back the pairs addressed to it.  Keys are typically
//! encoded global matrix indices, so the receiver can place values without
//! any out-of-band coordination.  The key/value encoding doubles the word
//! count of these transfers; since they are lower-order terms in every
//! algorithm (see DESIGN.md), the asymptotic costs are unaffected.

use crate::distmat::DistMatrix;
use crate::Result;
use simnet::{coll, Communicator};

/// Exchange `(key, value)` pairs between all ranks of `comm`.
///
/// `outgoing[d]` contains the pairs destined for local rank `d`.  The result
/// is indexed by source rank.  Keys must be representable exactly as `f64`
/// (i.e. `< 2^53`), which holds for any encoded matrix index in this project.
///
/// When `log_latency` is true (the default used by the algorithms) the
/// exchange is routed through the Bruck all-to-all-v (`⌈log₂ p⌉` messages per
/// rank, each word forwarded up to `⌈log₂ p⌉` times); otherwise a direct
/// pairwise exchange is used (`p − 1` messages, no forwarding).
pub fn exchange_keyed(
    comm: &Communicator,
    outgoing: &[Vec<(u64, f64)>],
    log_latency: bool,
) -> Result<Vec<Vec<(u64, f64)>>> {
    debug_assert_eq!(outgoing.len(), comm.size());
    let _span = obs::span_with("pgrid", "exchange_keyed", "ranks", comm.size() as u64);
    let blocks: Vec<Vec<f64>> = outgoing
        .iter()
        .map(|pairs| {
            let mut flat = Vec::with_capacity(pairs.len() * 2);
            for (k, v) in pairs {
                flat.push(*k as f64);
                flat.push(*v);
            }
            flat
        })
        .collect();
    let received = if log_latency {
        coll::alltoallv_bruck(comm, &blocks)?
    } else {
        coll::alltoallv_direct(comm, &blocks)?
    };
    Ok(received
        .into_iter()
        .map(|flat| {
            flat.chunks_exact(2)
                .map(|c| (c[0] as u64, c[1]))
                .collect::<Vec<(u64, f64)>>()
        })
        .collect())
}

/// Encode a global matrix index `(i, j)` of a matrix with `cols` columns into
/// a redistribution key.
#[inline]
pub fn encode_index(i: usize, j: usize, cols: usize) -> u64 {
    (i * cols + j) as u64
}

/// Decode a redistribution key back into `(i, j)` for a matrix with `cols`
/// columns.
#[inline]
pub fn decode_index(key: u64, cols: usize) -> (usize, usize) {
    let k = key as usize;
    (k / cols, k % cols)
}

/// Route every locally-owned element of `mat` to the rank selected by
/// `dest_of(global_row, global_col)` (a local rank of the matrix's grid
/// communicator) and return the received elements as `(i, j, value)` triples.
///
/// This is the workhorse behind the layout changes of the 3D matrix
/// multiplication and of the diagonal-block inverter.
pub fn remap_elements<F>(
    mat: &DistMatrix,
    dest_of: F,
    log_latency: bool,
) -> Result<Vec<(usize, usize, f64)>>
where
    F: Fn(usize, usize) -> usize,
{
    let comm = mat.grid().comm();
    let p = comm.size();
    let cols = mat.cols();
    let mut outgoing: Vec<Vec<(u64, f64)>> = vec![Vec::new(); p];
    let local = mat.local();
    for li in 0..local.rows() {
        let gi = mat.global_row(li);
        for lj in 0..local.cols() {
            let gj = mat.global_col(lj);
            let dest = dest_of(gi, gj);
            debug_assert!(dest < p, "dest_of returned rank {dest} >= p = {p}");
            outgoing[dest].push((encode_index(gi, gj, cols), local[(li, lj)]));
        }
    }
    let incoming = exchange_keyed(comm, &outgoing, log_latency)?;
    Ok(incoming
        .into_iter()
        .flatten()
        .map(|(k, v)| {
            let (i, j) = decode_index(k, cols);
            (i, j, v)
        })
        .collect())
}

/// Route elements described by an explicit iterator (global row, global col,
/// value, destination local rank) and return the received `(i, j, value)`
/// triples.  `cols` is the column count used for key encoding and must be the
/// same on every rank.
pub fn scatter_elements(
    comm: &Communicator,
    cols: usize,
    elements: impl IntoIterator<Item = (usize, usize, f64, usize)>,
    log_latency: bool,
) -> Result<Vec<(usize, usize, f64)>> {
    let p = comm.size();
    let mut outgoing: Vec<Vec<(u64, f64)>> = vec![Vec::new(); p];
    for (i, j, v, dest) in elements {
        debug_assert!(dest < p);
        outgoing[dest].push((encode_index(i, j, cols), v));
    }
    let incoming = exchange_keyed(comm, &outgoing, log_latency)?;
    Ok(incoming
        .into_iter()
        .flatten()
        .map(|(k, v)| {
            let (i, j) = decode_index(k, cols);
            (i, j, v)
        })
        .collect())
}

/// Distributed transpose: returns `Aᵀ` distributed cyclically over the same
/// grid as `A`.  Every element moves to the owner of its transposed position
/// via one keyed all-to-all (the cost the paper charges for its layout
/// transposes).
pub fn transpose(mat: &DistMatrix, log_latency: bool) -> Result<DistMatrix> {
    let grid = mat.grid().clone();
    let pr = grid.rows();
    let pc = grid.cols();
    let received = remap_elements(mat, |i, j| grid.rank_of(j % pr, i % pc), log_latency)?;
    let mut out = DistMatrix::zeros(&grid, mat.cols(), mat.rows());
    for (i, j, v) in received {
        // We received (i, j) of A because we own (j, i) of Aᵀ.
        out.local_mut()[(j / pr, i / pc)] = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid2D;
    use dense::Matrix;
    use simnet::{Machine, MachineParams};

    #[test]
    fn distributed_transpose_matches_local() {
        let out = Machine::new(6, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 3).unwrap();
                let a = DistMatrix::from_fn(&grid, 8, 10, |i, j| (i * 10 + j) as f64);
                let at = transpose(&a, true).unwrap();
                let expect = a.to_global().transpose();
                dense::norms::rel_diff(&at.to_global(), &expect)
            })
            .unwrap();
        assert!(out.results.into_iter().all(|d| d == 0.0));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let a = DistMatrix::from_fn(&grid, 6, 6, |i, j| (i * 7 + j * 3) as f64);
                let att = transpose(&transpose(&a, false).unwrap(), false).unwrap();
                att.rel_diff(&a).unwrap()
            })
            .unwrap();
        assert!(out.results.into_iter().all(|d| d == 0.0));
    }

    #[test]
    fn index_encoding_round_trips() {
        for (i, j, cols) in [
            (0usize, 0usize, 5usize),
            (3, 4, 5),
            (100, 7, 8),
            (12345, 67, 89),
        ] {
            let k = encode_index(i, j, cols);
            assert_eq!(decode_index(k, cols), (i, j));
        }
    }

    #[test]
    fn exchange_keyed_delivers_by_destination() {
        for log_latency in [true, false] {
            let out = Machine::new(4, MachineParams::unit())
                .run(move |comm| {
                    // Rank r sends the pair (r*10+d, r as value) to every d.
                    let outgoing: Vec<Vec<(u64, f64)>> = (0..4)
                        .map(|d| vec![((comm.rank() * 10 + d) as u64, comm.rank() as f64)])
                        .collect();
                    exchange_keyed(comm, &outgoing, log_latency).unwrap()
                })
                .unwrap();
            for (rank, incoming) in out.results.into_iter().enumerate() {
                for (src, pairs) in incoming.into_iter().enumerate() {
                    assert_eq!(pairs.len(), 1);
                    assert_eq!(pairs[0].0, (src * 10 + rank) as u64);
                    assert_eq!(pairs[0].1, src as f64);
                }
            }
        }
    }

    #[test]
    fn remap_to_transposed_ownership() {
        // Redistribute a matrix from cyclic ownership on a 2x2 grid to the
        // ownership pattern of its transpose and check every element arrives
        // exactly once at the right place.
        let rows = 6;
        let cols = 6;
        let out = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let mat = DistMatrix::from_fn(&grid, rows, cols, |i, j| (i * cols + j) as f64);
                // Destination: owner of (j, i) instead of (i, j).
                let received = remap_elements(
                    &mat,
                    |i, j| {
                        let (or, oc) = (j % 2, i % 2);
                        grid.rank_of(or, oc)
                    },
                    true,
                )
                .unwrap();
                // Rebuild the local piece of the transposed-ownership matrix.
                let mut t_local = DistMatrix::zeros(&grid, cols, rows);
                let mut count = 0usize;
                for (i, j, v) in received {
                    // We now own (i, j) because we own (j, i) under the
                    // transposed pattern: place the value at (j, i).
                    let pr = grid.rows();
                    let pc = grid.cols();
                    let (x, y) = grid.my_coords();
                    assert_eq!(j % pr, x);
                    assert_eq!(i % pc, y);
                    t_local.local_mut()[((j - x) / pr, (i - y) / pc)] = v;
                    count += 1;
                }
                (count, t_local.to_global())
            })
            .unwrap();
        let expect = Matrix::from_fn(cols, rows, |i, j| (j * cols + i) as f64);
        let mut total = 0usize;
        for (count, t) in out.results {
            total += count;
            assert_eq!(t, expect);
        }
        assert_eq!(total, rows * cols);
    }

    #[test]
    fn scatter_elements_addresses_explicit_destinations() {
        let out = Machine::new(3, MachineParams::unit())
            .run(|comm| {
                // Rank 0 scatters a 3x3 diagonal to ranks by row index.
                let elements: Vec<(usize, usize, f64, usize)> = if comm.rank() == 0 {
                    (0..3).map(|i| (i, i, (i + 1) as f64, i)).collect()
                } else {
                    Vec::new()
                };
                scatter_elements(comm, 3, elements, false).unwrap()
            })
            .unwrap();
        for (rank, received) in out.results.into_iter().enumerate() {
            assert_eq!(received.len(), 1);
            assert_eq!(received[0], (rank, rank, (rank + 1) as f64));
        }
    }

    #[test]
    fn bruck_and_direct_remap_agree() {
        let out = Machine::new(8, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 4).unwrap();
                let mat = DistMatrix::from_fn(&grid, 8, 8, |i, j| (i * 8 + j) as f64);
                let dest = |i: usize, j: usize| (i + j) % 8;
                let mut a = remap_elements(&mat, dest, true).unwrap();
                let mut b = remap_elements(&mat, dest, false).unwrap();
                a.sort_by_key(|&(i, j, _)| (i, j));
                b.sort_by_key(|&(i, j, _)| (i, j));
                a == b
            })
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }
}
