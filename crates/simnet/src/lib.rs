//! # `simnet` — a simulated distributed-memory machine
//!
//! This crate is the *MPI substitute* for the communication-avoiding TRSM
//! reproduction.  The paper (Wicky, Solomonik, Hoefler, IPDPS 2017) analyses
//! its algorithms in the **α–β–γ model**: the execution time along the
//! critical path is
//!
//! ```text
//! T = α·S + β·W + γ·F
//! ```
//!
//! where `S` is the number of messages, `W` the number of words and `F` the
//! number of flops on the critical path.  `simnet` executes an SPMD program
//! on `p` simulated processors (one OS thread each), moves **real data**
//! between them over channels, and simultaneously advances a **virtual clock**
//! per processor using exactly this model, so that every algorithm built on
//! top can be both *verified for correctness* and *measured for S, W, F and
//! T* — which is what the paper's evaluation reports.
//!
//! The crate provides:
//!
//! * [`machine::Machine`] — spawns the ranks, runs the SPMD closure, collects
//!   per-rank cost counters into a [`cost::CostReport`].
//! * [`comm::Communicator`] — point-to-point `send`/`recv`, communicator
//!   splitting, and the virtual-clock bookkeeping.
//! * [`coll`] — the collective operations of Section II-C1 of the paper
//!   (allgather, gather, scatter, reduce-scatter, reduce, allreduce,
//!   broadcast, all-to-all, all-to-all-v, barrier), implemented with the
//!   butterfly / binomial / Bruck schedules whose costs the paper quotes.
//! * [`params::MachineParams`] — the α, β, γ constants plus the retry budget
//!   used by the fault-injection transport.
//! * [`fault`] — deterministic, seeded fault injection: a [`fault::FaultPlan`]
//!   attached via [`machine::Machine::with_fault_plan`] can drop, delay,
//!   duplicate and reorder messages and stall or crash ranks, with every
//!   fault drawn from a per-rank PRNG so runs are exactly reproducible.
//!
//! ## Timing model
//!
//! * `send(dst, data)` charges the sender `α + β·|data|` and stamps the
//!   message with the sender's clock after the charge (its "availability
//!   time").
//! * `recv(src)` advances the receiver's clock to
//!   `max(receiver clock, availability time)` — the transfer time was already
//!   paid by the sender, so a balanced pairwise exchange costs `α + β·n`
//!   per round, matching the collective cost formulas in the paper.
//! * `charge_flops(f)` charges `γ·f`.
//!
//! With [`params::MachineParams::overlap`] enabled, a posted send instead
//! advances an in-flight horizon in the background: subsequent local flops
//! hide under the transfer (the rank pays `max(comm, comp)` per such phase
//! rather than `comm + comp`), the hidden time is surfaced in
//! [`cost::CostCounters::overlap`], and the clock catches up to the horizon
//! at rank finalization.  The default (`overlap: false`) keeps the strict
//! sequential charging above.
//!
//! Message and word counters are kept for both directions; reported `S` and
//! `W` are the per-rank maximum of sent and received, maximised over ranks,
//! which is the paper's "along the critical path" convention.
//!
//! ## Execution model
//!
//! Ranks are real OS threads, but the host rarely has a core per simulated
//! processor: a counting gate bounds how many ranks *compute* at once to
//! [`machine::Machine::rank_workers`] (default: the dense worker pool's
//! width), a blocked receiver always returns its compute slot before
//! sleeping, and each rank's local GEMM/TRSM calls get a proportional share
//! of the pool through [`dense::with_thread_budget`].  Scheduling never
//! leaks into results: all numerics depend only on rank-local state and
//! message payloads, delivered in per-stream FIFO order regardless of thread
//! interleaving, so runs are bitwise deterministic at every worker count.
//!
//! ## Example
//!
//! ```
//! use simnet::{Machine, MachineParams};
//!
//! // 4 ranks compute the sum of their ranks with an allreduce.
//! let out = Machine::new(4, MachineParams::unit())
//!     .run(|comm| {
//!         let mine = vec![comm.rank() as f64];
//!         simnet::coll::allreduce(comm, &mine, simnet::coll::ReduceOp::Sum).unwrap()
//!     })
//!     .unwrap();
//! assert!(out.results.iter().all(|v| v[0] == 6.0));
//! assert!(out.report.max_messages() > 0);
//! ```

pub mod coll;
pub mod comm;
pub mod cost;
pub mod error;
pub mod fault;
mod gate;
pub mod machine;
pub mod message;
pub mod params;

pub use comm::Communicator;
pub use cost::{CostCounters, CostReport};
pub use error::SimError;
pub use fault::{CrashPoint, FaultInjector, FaultPlan, SendFaults};
pub use machine::{Machine, RunOutput};
pub use params::MachineParams;

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;
