//! Collective communication operations (Section II-C1 of the paper).
//!
//! The paper builds every algorithm out of a small set of collectives and
//! quotes their α–β–γ costs for butterfly / recursive-doubling schedules
//! (Chan et al., Thakur et al., Bruck et al.):
//!
//! | collective      | cost                                              |
//! |-----------------|---------------------------------------------------|
//! | allgather       | `α·log p + β·n·(p−1)/p`                           |
//! | scatter, gather | `α·log p + β·n·(p−1)/p`                           |
//! | reduce-scatter  | `α·log p + (β+γ)·n·(p−1)/p`                       |
//! | all-to-all      | `α·log p + β·(n/2)·log p`                         |
//! | reduce / allreduce | `2α·log p + 2β·n + γ·n` (reduce-scatter + (all)gather) |
//! | broadcast       | `2α·log p + 2β·n` (scatter + allgather)           |
//!
//! The implementations below realise those schedules on a [`Communicator`]
//! so the *measured* message/word counters reproduce the formulas (exactly
//! for power-of-two communicator sizes and divisible vector lengths, which is
//! what the paper assumes; other sizes fall back to correct but slightly more
//! expensive schedules).

use crate::comm::Communicator;
use crate::error::SimError;
use crate::Result;

/// Reduction operator applied element-wise by the reducing collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }

    /// Combine `incoming` into `acc`, charging one flop per element to `comm`.
    fn fold_into(self, comm: &Communicator, acc: &mut [f64], incoming: &[f64]) {
        debug_assert_eq!(acc.len(), incoming.len());
        for (a, b) in acc.iter_mut().zip(incoming.iter()) {
            *a = self.apply(*a, *b);
        }
        comm.charge_flops(acc.len() as u64);
    }
}

/// Dissemination barrier: `⌈log₂ p⌉` zero-payload exchanges.
pub fn barrier(comm: &Communicator) -> Result<()> {
    let p = comm.size();
    if p <= 1 {
        return Ok(());
    }
    let tag = comm.next_op_tag();
    let mut d = 1;
    let mut step = 0;
    while d < p {
        let to = (comm.rank() + d) % p;
        let from = (comm.rank() + p - d) % p;
        comm.send_raw(to, tag + step, &[])?;
        comm.recv_raw(from, tag + step)?;
        d *= 2;
        step += 1;
    }
    Ok(())
}

/// Bruck allgather of equal-sized blocks.
///
/// Every rank contributes `local`; the result is the concatenation of all
/// contributions in rank order (identical on every rank).  All contributions
/// must have the same length.
pub fn allgather(comm: &Communicator, local: &[f64]) -> Result<Vec<f64>> {
    let p = comm.size();
    let rank = comm.rank();
    let blk = local.len();
    if p == 1 {
        return Ok(local.to_vec());
    }
    let tag = comm.next_op_tag();

    // `collection` holds blocks (rank, rank+1, …) mod p, contiguously.
    let mut collection: Vec<f64> = local.to_vec();
    let mut cnt = 1usize;
    let mut step = 0u64;
    while cnt < p {
        let need = cnt.min(p - cnt);
        let to = (rank + p - cnt) % p;
        let from = (rank + cnt) % p;
        comm.send_raw(to, tag + step, &collection[..need * blk])?;
        let received = comm.recv_raw(from, tag + step)?;
        collection.extend_from_slice(&received);
        cnt += need;
        step += 1;
    }

    // Un-rotate: position j of the collection is global block (rank + j) % p.
    let mut out = vec![0.0; p * blk];
    for j in 0..p {
        let global = (rank + j) % p;
        out[global * blk..(global + 1) * blk].copy_from_slice(&collection[j * blk..(j + 1) * blk]);
    }
    Ok(out)
}

/// Allgather of variable-sized blocks; returns one vector per rank.
pub fn allgatherv(comm: &Communicator, local: &[f64]) -> Result<Vec<Vec<f64>>> {
    let p = comm.size();
    // First share the lengths with a fixed-size allgather, then pad to the
    // maximum length so the Bruck exchange stays block-regular.
    let lens = allgather(comm, &[local.len() as f64])?;
    let lens: Vec<usize> = lens.iter().map(|&v| v as usize).collect();
    let max_len = lens.iter().copied().max().unwrap_or(0);
    let mut padded = local.to_vec();
    padded.resize(max_len, 0.0);
    let flat = allgather(comm, &padded)?;
    Ok((0..p)
        .map(|r| flat[r * max_len..r * max_len + lens[r]].to_vec())
        .collect())
}

/// Binomial-tree gather of equal-sized blocks to `root`.
///
/// Returns `Some(concatenation in rank order)` on the root and `None`
/// elsewhere.
pub fn gather(comm: &Communicator, root: usize, local: &[f64]) -> Result<Option<Vec<f64>>> {
    let p = comm.size();
    if root >= p {
        return Err(SimError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    let blk = local.len();
    if p == 1 {
        return Ok(Some(local.to_vec()));
    }
    let tag = comm.next_op_tag();
    let rel = (comm.rank() + p - root) % p;

    // `collection` holds relative blocks [rel, rel + cnt).
    let mut collection: Vec<f64> = local.to_vec();
    let mut cnt = 1usize;
    let mut d = 1usize;
    let mut step = 0u64;
    let mut sent = false;
    while d < p {
        if rel.is_multiple_of(2 * d) {
            let src_rel = rel + d;
            if src_rel < p {
                let from = (src_rel + root) % p;
                let received = comm.recv_raw(from, tag + step)?;
                collection.extend_from_slice(&received);
                cnt += received.len() / blk.max(1);
            }
        } else if !sent {
            // Relative ranks with the low bit of `rel / d` set send their
            // whole collection to rel - d and are done.
            let dst_rel = rel - d;
            let to = (dst_rel + root) % p;
            comm.send_raw(to, tag + step, &collection)?;
            sent = true;
        }
        d *= 2;
        step += 1;
    }
    let _ = cnt;

    if comm.rank() == root {
        // Root's collection is in relative order; translate to absolute ranks.
        let mut out = vec![0.0; p * blk];
        for j in 0..p {
            let abs = (j + root) % p;
            out[abs * blk..(abs + 1) * blk].copy_from_slice(&collection[j * blk..(j + 1) * blk]);
        }
        Ok(Some(out))
    } else {
        Ok(None)
    }
}

/// Binomial-tree scatter of equal-sized blocks from `root`.
///
/// On the root, `data` must contain `p` blocks of `block` words each in rank
/// order; elsewhere `data` is ignored.  Every rank returns its own block.
pub fn scatter(comm: &Communicator, root: usize, data: &[f64], block: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    if root >= p {
        return Err(SimError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    if comm.rank() == root && data.len() != p * block {
        return Err(SimError::BadCollectiveArgs {
            op: "scatter",
            reason: format!(
                "root buffer has {} words, expected {}",
                data.len(),
                p * block
            ),
        });
    }
    if p == 1 {
        return Ok(data.to_vec());
    }
    let tag = comm.next_op_tag();
    let rel = (comm.rank() + p - root) % p;

    // Walk the binomial recursion over relative rank ranges [lo, hi), where
    // `lo` currently holds the data for the whole range.
    let mut lo = 0usize;
    let mut hi = p;
    // Root starts with all blocks ordered by relative rank.
    let mut held: Vec<f64> = if comm.rank() == root {
        let mut v = vec![0.0; p * block];
        for j in 0..p {
            let abs = (j + root) % p;
            v[j * block..(j + 1) * block].copy_from_slice(&data[abs * block..(abs + 1) * block]);
        }
        v
    } else {
        Vec::new()
    };
    let mut step = 0u64;
    while hi - lo > 1 {
        let half = (hi - lo).div_ceil(2);
        let mid = lo + half;
        if rel < mid {
            // I am in the lower half; if I am `lo`, send the upper half away.
            if rel == lo {
                let to = (mid + root) % p;
                let upper = held.split_off(half * block);
                comm.send_raw(to, tag + step, &upper)?;
            }
            hi = mid;
        } else {
            // I am in the upper half; if I am `mid`, receive the upper half.
            if rel == mid {
                let from = (lo + root) % p;
                held = comm.recv_raw(from, tag + step)?;
            }
            lo = mid;
        }
        step += 1;
    }
    debug_assert_eq!(lo, rel);
    held.truncate(block);
    Ok(held)
}

/// Recursive-halving reduce-scatter.
///
/// Every rank contributes a vector of `p × block` words; rank `r` returns the
/// element-wise reduction of block `r` over all contributions.  For
/// non-power-of-two communicators a (correct, slightly costlier)
/// reduce-then-scatter fallback is used.
pub fn reduce_scatter(comm: &Communicator, data: &[f64], op: ReduceOp) -> Result<Vec<f64>> {
    let p = comm.size();
    if !data.len().is_multiple_of(p) {
        return Err(SimError::BadCollectiveArgs {
            op: "reduce_scatter",
            reason: format!("buffer length {} not divisible by p = {}", data.len(), p),
        });
    }
    let block = data.len() / p;
    if p == 1 {
        return Ok(data.to_vec());
    }
    if !p.is_power_of_two() {
        // Fallback: binomial reduce to rank 0, then binomial scatter.
        let reduced = reduce(comm, 0, data, op)?;
        let root_buf = reduced.unwrap_or_default();
        return scatter(comm, 0, &root_buf, block);
    }

    let tag = comm.next_op_tag();
    let rank = comm.rank();
    // `current` always holds the partially reduced data for the block range
    // [range_lo, range_hi) that this rank is still responsible for.
    let mut current: Vec<f64> = data.to_vec();
    let mut range_lo = 0usize;
    let mut range_hi = p;
    let mut d = p / 2;
    let mut step = 0u64;
    while d >= 1 {
        let partner = rank ^ d;
        let mid = range_lo + (range_hi - range_lo) / 2;
        // Which half do I keep?  The half containing my own rank.
        let (keep_lo, keep_hi, send_lo, send_hi) = if rank < partner {
            (range_lo, mid, mid, range_hi)
        } else {
            (mid, range_hi, range_lo, mid)
        };
        let send_slice = &current[(send_lo - range_lo) * block..(send_hi - range_lo) * block];
        comm.send_raw(partner, tag + step, send_slice)?;
        let received = comm.recv_raw(partner, tag + step)?;
        let mut kept: Vec<f64> =
            current[(keep_lo - range_lo) * block..(keep_hi - range_lo) * block].to_vec();
        op.fold_into(comm, &mut kept, &received);
        current = kept;
        range_lo = keep_lo;
        range_hi = keep_hi;
        d /= 2;
        step += 1;
    }
    debug_assert_eq!(range_hi - range_lo, 1);
    debug_assert_eq!(range_lo, rank);
    Ok(current)
}

/// Binomial-tree reduction to `root`: returns `Some(reduced vector)` on the
/// root and `None` elsewhere.
pub fn reduce(
    comm: &Communicator,
    root: usize,
    data: &[f64],
    op: ReduceOp,
) -> Result<Option<Vec<f64>>> {
    let p = comm.size();
    if root >= p {
        return Err(SimError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    if p == 1 {
        return Ok(Some(data.to_vec()));
    }
    let tag = comm.next_op_tag();
    let rel = (comm.rank() + p - root) % p;
    let mut acc = data.to_vec();
    let mut d = 1usize;
    let mut step = 0u64;
    let mut sent = false;
    while d < p {
        if rel.is_multiple_of(2 * d) {
            let src_rel = rel + d;
            if src_rel < p {
                let from = (src_rel + root) % p;
                let received = comm.recv_raw(from, tag + step)?;
                op.fold_into(comm, &mut acc, &received);
            }
        } else if !sent {
            let to = (rel - d + root) % p;
            comm.send_raw(to, tag + step, &acc)?;
            sent = true;
        }
        d *= 2;
        step += 1;
    }
    if comm.rank() == root {
        Ok(Some(acc))
    } else {
        Ok(None)
    }
}

/// Allreduce implemented as reduce-scatter followed by allgather
/// (cost `2α·log p + 2β·n + γ·n`), padding internally when the length is not
/// divisible by `p`.
pub fn allreduce(comm: &Communicator, data: &[f64], op: ReduceOp) -> Result<Vec<f64>> {
    let p = comm.size();
    if p == 1 {
        return Ok(data.to_vec());
    }
    let len = data.len();
    let block = len.div_ceil(p);
    let mut padded = data.to_vec();
    padded.resize(block * p, identity_of(op));
    let mine = reduce_scatter(comm, &padded, op)?;
    let mut full = allgather(comm, &mine)?;
    full.truncate(len);
    Ok(full)
}

/// Broadcast implemented as scatter followed by allgather
/// (cost `2α·log p + 2β·n`).  `data` is only read on the root; every rank
/// must pass the same `len`.
pub fn bcast(comm: &Communicator, root: usize, data: &[f64], len: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    if root >= p {
        return Err(SimError::InvalidRank {
            rank: root,
            size: p,
        });
    }
    if comm.rank() == root && data.len() != len {
        return Err(SimError::BadCollectiveArgs {
            op: "bcast",
            reason: format!("root buffer has {} words, expected {}", data.len(), len),
        });
    }
    if p == 1 {
        return Ok(data.to_vec());
    }
    let block = len.div_ceil(p);
    let padded_root: Vec<f64> = if comm.rank() == root {
        let mut v = data.to_vec();
        v.resize(block * p, 0.0);
        v
    } else {
        Vec::new()
    };
    let mine = scatter(comm, root, &padded_root, block)?;
    let mut full = allgather(comm, &mine)?;
    full.truncate(len);
    Ok(full)
}

/// Bruck all-to-all of equal-sized blocks.
///
/// `data` holds `p` blocks of `block` words; block `j` is delivered to rank
/// `j`.  The result holds `p` blocks where block `i` came from rank `i`.
/// Cost `α·⌈log p⌉ + β·(n/2)·⌈log p⌉` with `n = p·block`.
pub fn alltoall(comm: &Communicator, data: &[f64], block: usize) -> Result<Vec<f64>> {
    let p = comm.size();
    if data.len() != p * block {
        return Err(SimError::BadCollectiveArgs {
            op: "alltoall",
            reason: format!("buffer has {} words, expected {}", data.len(), p * block),
        });
    }
    if p == 1 {
        return Ok(data.to_vec());
    }
    let rank = comm.rank();
    let tag = comm.next_op_tag();

    // Phase 1: local rotation so slot j holds the block destined to (rank+j)%p.
    let mut slots: Vec<Vec<f64>> = (0..p)
        .map(|j| {
            let dest = (rank + j) % p;
            data[dest * block..(dest + 1) * block].to_vec()
        })
        .collect();

    // Phase 2: log p exchange rounds.
    let mut d = 1usize;
    let mut step = 0u64;
    while d < p {
        let to = (rank + d) % p;
        let from = (rank + p - d) % p;
        // Collect the slots whose index has bit `d` set.
        let mut payload = Vec::new();
        let mut moved = Vec::new();
        for (j, slot) in slots.iter().enumerate() {
            if j & d != 0 {
                payload.extend_from_slice(slot);
                moved.push(j);
            }
        }
        comm.send_raw(to, tag + step, &payload)?;
        let received = comm.recv_raw(from, tag + step)?;
        for (idx, j) in moved.iter().enumerate() {
            slots[*j].copy_from_slice(&received[idx * block..(idx + 1) * block]);
        }
        d *= 2;
        step += 1;
    }

    // Phase 3: slot j now holds the block that rank (rank - j + p) % p sent to me.
    let mut out = vec![0.0; p * block];
    for (j, slot) in slots.iter().enumerate() {
        let src = (rank + p - j) % p;
        out[src * block..(src + 1) * block].copy_from_slice(slot);
    }
    Ok(out)
}

/// Personalised all-to-all with per-destination payloads of arbitrary length,
/// delivered directly with `p − 1` pairwise exchanges (latency `O(p)`,
/// bandwidth optimal).  `blocks[j]` is sent to rank `j`; the result is indexed
/// by source rank.
pub fn alltoallv_direct(comm: &Communicator, blocks: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let p = comm.size();
    if blocks.len() != p {
        return Err(SimError::BadCollectiveArgs {
            op: "alltoallv_direct",
            reason: format!("expected {} destination blocks, got {}", p, blocks.len()),
        });
    }
    let rank = comm.rank();
    let tag = comm.next_op_tag();
    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    out[rank] = blocks[rank].clone();
    for offset in 1..p {
        let to = (rank + offset) % p;
        let from = (rank + p - offset) % p;
        comm.send_raw(to, tag + offset as u64, &blocks[to])?;
        out[from] = comm.recv_raw(from, tag + offset as u64)?;
    }
    Ok(out)
}

/// Personalised all-to-all routed through a Bruck-style store-and-forward
/// network: `⌈log₂ p⌉` rounds, each word travels at most `⌈log₂ p⌉` hops.
///
/// This is the schedule the paper charges for its layout transposes:
/// `O(α·log p + β·(total volume / p)·log p)` per processor.  `blocks[j]` is
/// sent to rank `j`; the result is indexed by source rank.
pub fn alltoallv_bruck(comm: &Communicator, blocks: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let p = comm.size();
    if blocks.len() != p {
        return Err(SimError::BadCollectiveArgs {
            op: "alltoallv_bruck",
            reason: format!("expected {} destination blocks, got {}", p, blocks.len()),
        });
    }
    if p == 1 {
        return Ok(vec![blocks[0].clone()]);
    }
    let rank = comm.rank();
    let tag = comm.next_op_tag();

    // Items in flight: (final destination, original source, payload).
    let mut items: Vec<(usize, usize, Vec<f64>)> = blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| !b.is_empty())
        .map(|(dest, b)| (dest, rank, b.clone()))
        .collect();

    let mut d = 1usize;
    let mut step = 0u64;
    while d < p {
        let to = (rank + d) % p;
        let from = (rank + p - d) % p;
        // Forward every item whose remaining hop distance has bit `d` set.
        let (forward, keep): (Vec<_>, Vec<_>) = items
            .into_iter()
            .partition(|(dest, _, _)| ((dest + p - rank) % p) & d != 0);
        // Serialise: [count, (dest, src, len, payload…)*].
        let mut payload: Vec<f64> = vec![forward.len() as f64];
        for (dest, src, data) in &forward {
            payload.push(*dest as f64);
            payload.push(*src as f64);
            payload.push(data.len() as f64);
            payload.extend_from_slice(data);
        }
        comm.send_raw(to, tag + step, &payload)?;
        let received = comm.recv_raw(from, tag + step)?;
        items = keep;
        let mut cursor = 1usize;
        let count = received.first().copied().unwrap_or(0.0) as usize;
        for _ in 0..count {
            let dest = received[cursor] as usize;
            let src = received[cursor + 1] as usize;
            let len = received[cursor + 2] as usize;
            cursor += 3;
            let data = received[cursor..cursor + len].to_vec();
            cursor += len;
            items.push((dest, src, data));
        }
        d *= 2;
        step += 1;
    }

    let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
    for (dest, src, data) in items {
        debug_assert_eq!(dest, rank, "item should have arrived at its destination");
        out[src] = data;
    }
    Ok(out)
}

fn identity_of(op: ReduceOp) -> f64 {
    match op {
        ReduceOp::Sum => 0.0,
        ReduceOp::Max => f64::NEG_INFINITY,
        ReduceOp::Min => f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::params::MachineParams;

    fn run<T: Send>(
        p: usize,
        f: impl Fn(&Communicator) -> T + Send + Sync,
    ) -> (Vec<T>, crate::cost::CostReport) {
        let out = Machine::new(p, MachineParams::unit()).run(f).unwrap();
        (out.results, out.report)
    }

    #[test]
    fn barrier_completes_and_costs_log_p() {
        let (_, report) = run(8, |comm| barrier(comm).unwrap());
        assert_eq!(report.max_messages(), 3);
        assert_eq!(report.max_words(), 0);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        for p in [1usize, 2, 3, 4, 7, 8, 16] {
            let (results, _) = run(p, |comm| {
                let local = vec![comm.rank() as f64 * 10.0, comm.rank() as f64 * 10.0 + 1.0];
                allgather(comm, &local).unwrap()
            });
            let expected: Vec<f64> = (0..p)
                .flat_map(|r| vec![r as f64 * 10.0, r as f64 * 10.0 + 1.0])
                .collect();
            for r in results {
                assert_eq!(r, expected, "p = {p}");
            }
        }
    }

    #[test]
    fn allgather_cost_matches_formula_for_power_of_two() {
        // n total words = p * blk; cost: log p messages, blk*(p-1) words.
        let p = 16;
        let blk = 32;
        let (_, report) = run(p, move |comm| {
            let local = vec![comm.rank() as f64; blk];
            allgather(comm, &local).unwrap()
        });
        assert_eq!(report.max_messages(), 4);
        assert_eq!(report.max_words(), (blk * (p - 1)) as u64);
    }

    #[test]
    fn allgatherv_supports_ragged_blocks() {
        let (results, _) = run(5, |comm| {
            let local = vec![comm.rank() as f64; comm.rank() + 1];
            allgatherv(comm, &local).unwrap()
        });
        for r in results {
            for (rank, blockv) in r.iter().enumerate() {
                assert_eq!(blockv.len(), rank + 1);
                assert!(blockv.iter().all(|&v| v == rank as f64));
            }
        }
    }

    #[test]
    fn gather_collects_only_at_root() {
        for p in [2usize, 4, 6, 8] {
            for root in [0usize, 1, p - 1] {
                let (results, _) = run(p, move |comm| {
                    let local = vec![comm.rank() as f64; 3];
                    gather(comm, root, &local).unwrap()
                });
                for (rank, r) in results.into_iter().enumerate() {
                    if rank == root {
                        let data = r.expect("root gets data");
                        let expected: Vec<f64> = (0..p).flat_map(|q| vec![q as f64; 3]).collect();
                        assert_eq!(data, expected);
                    } else {
                        assert!(r.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn gather_cost_matches_formula() {
        let p = 8;
        let blk = 16;
        let (_, report) = run(p, move |comm| {
            let local = vec![1.0; blk];
            gather(comm, 0, &local).unwrap()
        });
        // Root receives blk*(p-1) words in log p messages.
        assert_eq!(report.max_messages(), 3);
        assert_eq!(report.max_words(), (blk * (p - 1)) as u64);
    }

    #[test]
    fn scatter_distributes_blocks() {
        for p in [2usize, 3, 4, 8] {
            for root in [0usize, p / 2] {
                let (results, _) = run(p, move |comm| {
                    let data: Vec<f64> = if comm.rank() == root {
                        (0..p * 2).map(|v| v as f64).collect()
                    } else {
                        Vec::new()
                    };
                    scatter(comm, root, &data, 2).unwrap()
                });
                for (rank, r) in results.into_iter().enumerate() {
                    assert_eq!(r, vec![(rank * 2) as f64, (rank * 2 + 1) as f64]);
                }
            }
        }
    }

    #[test]
    fn scatter_cost_matches_formula() {
        let p = 8;
        let blk = 10;
        let (_, report) = run(p, move |comm| {
            let data: Vec<f64> = if comm.rank() == 0 {
                vec![1.0; p * blk]
            } else {
                Vec::new()
            };
            scatter(comm, 0, &data, blk).unwrap()
        });
        // Root sends blk*(p-1) words in log p messages.
        assert_eq!(report.max_messages(), 3);
        assert_eq!(report.max_words(), (blk * (p - 1)) as u64);
    }

    #[test]
    fn reduce_scatter_sums_blocks() {
        for p in [2usize, 4, 8, 6] {
            let (results, _) = run(p, move |comm| {
                // Every rank contributes [0,1,..,p*2-1] + rank.
                let data: Vec<f64> = (0..p * 2).map(|v| v as f64 + comm.rank() as f64).collect();
                reduce_scatter(comm, &data, ReduceOp::Sum).unwrap()
            });
            let rank_sum: f64 = (0..p).map(|r| r as f64).sum();
            for (rank, r) in results.into_iter().enumerate() {
                assert_eq!(r.len(), 2);
                assert_eq!(r[0], (rank * 2) as f64 * p as f64 + rank_sum);
                assert_eq!(r[1], (rank * 2 + 1) as f64 * p as f64 + rank_sum);
            }
        }
    }

    #[test]
    fn reduce_scatter_cost_matches_formula() {
        let p = 8;
        let blk = 4;
        let (_, report) = run(p, move |comm| {
            let data = vec![1.0; p * blk];
            reduce_scatter(comm, &data, ReduceOp::Sum).unwrap()
        });
        // log p messages; words = blk * (p-1); flops = words.
        assert_eq!(report.max_messages(), 3);
        assert_eq!(report.max_words(), (blk * (p - 1)) as u64);
        assert_eq!(report.max_flops(), (blk * (p - 1)) as u64);
    }

    #[test]
    fn reduce_to_root() {
        let (results, _) = run(6, |comm| {
            let data = vec![comm.rank() as f64, 1.0];
            reduce(comm, 2, &data, ReduceOp::Sum).unwrap()
        });
        for (rank, r) in results.into_iter().enumerate() {
            if rank == 2 {
                assert_eq!(r.unwrap(), vec![15.0, 6.0]);
            } else {
                assert!(r.is_none());
            }
        }
    }

    #[test]
    fn reduce_max_and_min() {
        let (results, _) = run(4, |comm| {
            let data = vec![comm.rank() as f64];
            let mx = allreduce(comm, &data, ReduceOp::Max).unwrap();
            let mn = allreduce(comm, &data, ReduceOp::Min).unwrap();
            (mx[0], mn[0])
        });
        for (mx, mn) in results {
            assert_eq!(mx, 3.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn allreduce_sums_everywhere_even_with_ragged_length() {
        for p in [2usize, 4, 5, 8] {
            for len in [1usize, 3, 17] {
                let (results, _) = run(p, move |comm| {
                    let data = vec![comm.rank() as f64 + 1.0; len];
                    allreduce(comm, &data, ReduceOp::Sum).unwrap()
                });
                let expect = (p * (p + 1) / 2) as f64;
                for r in results {
                    assert_eq!(r.len(), len);
                    assert!(r.iter().all(|&v| (v - expect).abs() < 1e-12));
                }
            }
        }
    }

    #[test]
    fn allreduce_cost_matches_formula() {
        let p = 16;
        let n = 64;
        let (_, report) = run(p, move |comm| {
            let data = vec![1.0; n];
            allreduce(comm, &data, ReduceOp::Sum).unwrap()
        });
        // reduce-scatter + allgather: 2 log p messages, 2 n (p-1)/p words, n(p-1)/p flops.
        assert_eq!(report.max_messages(), 8);
        assert_eq!(report.max_words() as usize, 2 * n * (p - 1) / p);
        assert_eq!(report.max_flops() as usize, n * (p - 1) / p);
    }

    #[test]
    fn bcast_delivers_to_everyone() {
        for p in [2usize, 4, 8, 5] {
            for root in [0usize, p - 1] {
                let (results, _) = run(p, move |comm| {
                    let data: Vec<f64> = if comm.rank() == root {
                        (0..10).map(|v| v as f64 * 3.0).collect()
                    } else {
                        Vec::new()
                    };
                    bcast(comm, root, &data, 10).unwrap()
                });
                let expected: Vec<f64> = (0..10).map(|v| v as f64 * 3.0).collect();
                for r in results {
                    assert_eq!(r, expected);
                }
            }
        }
    }

    #[test]
    fn bcast_cost_matches_formula() {
        let p = 8;
        let n = 80;
        let (_, report) = run(p, move |comm| {
            let data: Vec<f64> = if comm.rank() == 0 {
                vec![2.0; n]
            } else {
                Vec::new()
            };
            bcast(comm, 0, &data, n).unwrap()
        });
        // scatter + allgather: 2 log p messages, 2 n (p-1)/p words.
        assert_eq!(report.max_messages(), 6);
        assert_eq!(report.max_words() as usize, 2 * n * (p - 1) / p);
    }

    #[test]
    fn alltoall_transposes_blocks() {
        for p in [2usize, 4, 8, 5] {
            let (results, _) = run(p, move |comm| {
                // Block destined to rank j carries value rank*100 + j.
                let data: Vec<f64> = (0..p)
                    .flat_map(|j| vec![(comm.rank() * 100 + j) as f64; 2])
                    .collect();
                alltoall(comm, &data, 2).unwrap()
            });
            for (rank, r) in results.into_iter().enumerate() {
                for src in 0..p {
                    assert_eq!(r[src * 2], (src * 100 + rank) as f64);
                    assert_eq!(r[src * 2 + 1], (src * 100 + rank) as f64);
                }
            }
        }
    }

    #[test]
    fn alltoall_cost_matches_formula() {
        let p = 8;
        let blk = 6;
        let (_, report) = run(p, move |comm| {
            let data = vec![1.0; p * blk];
            alltoall(comm, &data, blk).unwrap()
        });
        // Bruck: log p rounds, each sending p/2 blocks.
        assert_eq!(report.max_messages(), 3);
        assert_eq!(report.max_words() as usize, 3 * (p / 2) * blk);
    }

    #[test]
    fn alltoallv_direct_and_bruck_agree() {
        for p in [2usize, 3, 4, 8] {
            let (results, _) = run(p, move |comm| {
                let rank = comm.rank();
                // Send `dest+1` copies of rank*10+dest to each dest (rank 0 sends nothing to itself).
                let blocks: Vec<Vec<f64>> = (0..p)
                    .map(|dest| {
                        if rank == 0 && dest == 0 {
                            Vec::new()
                        } else {
                            vec![(rank * 10 + dest) as f64; dest + 1]
                        }
                    })
                    .collect();
                let a = alltoallv_direct(comm, &blocks).unwrap();
                let b = alltoallv_bruck(comm, &blocks).unwrap();
                (a, b)
            });
            for (rank, (a, b)) in results.into_iter().enumerate() {
                assert_eq!(a, b, "p={p} rank={rank}");
                for (src, piece) in a.iter().enumerate().take(p) {
                    if rank == 0 && src == 0 {
                        assert!(piece.is_empty());
                    } else {
                        assert_eq!(piece.len(), rank + 1);
                        assert!(piece.iter().all(|&v| v == (src * 10 + rank) as f64));
                    }
                }
            }
        }
    }

    #[test]
    fn alltoallv_bruck_latency_is_logarithmic() {
        let p = 16;
        let (_, report) = run(p, move |comm| {
            let blocks: Vec<Vec<f64>> = (0..p).map(|d| vec![d as f64; 4]).collect();
            alltoallv_bruck(comm, &blocks).unwrap()
        });
        assert_eq!(report.max_messages(), 4);

        let (_, report_direct) = run(p, move |comm| {
            let blocks: Vec<Vec<f64>> = (0..p).map(|d| vec![d as f64; 4]).collect();
            alltoallv_direct(comm, &blocks).unwrap()
        });
        assert_eq!(report_direct.max_messages(), (p - 1) as u64);
    }

    #[test]
    fn collectives_validate_arguments() {
        let (results, _) = run(4, |comm| {
            let bad_root_gather = gather(comm, 9, &[1.0]).is_err();
            let bad_root_scatter = scatter(comm, 9, &[1.0; 4], 1).is_err();
            let bad_rs = reduce_scatter(comm, &[1.0; 5], ReduceOp::Sum).is_err();
            let bad_a2a = alltoall(comm, &[1.0; 5], 1).is_err();
            let bad_a2av = alltoallv_direct(comm, &[vec![], vec![]]).is_err();
            bad_root_gather && bad_root_scatter && bad_rs && bad_a2a && bad_a2av
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn collectives_work_on_subcommunicators() {
        let (results, _) = run(8, |comm| {
            // Two groups of 4 by parity of the rank.
            let sub = comm.split_by(|r| r % 2).unwrap();
            let local = vec![comm.rank() as f64];
            let summed = allreduce(&sub, &local, ReduceOp::Sum).unwrap();
            summed[0]
        });
        // Even ranks: 0+2+4+6 = 12; odd ranks: 1+3+5+7 = 16.
        for (rank, r) in results.into_iter().enumerate() {
            assert_eq!(r, if rank % 2 == 0 { 12.0 } else { 16.0 });
        }
    }

    #[test]
    fn back_to_back_collectives_do_not_interfere() {
        let (results, _) = run(4, |comm| {
            let a = allgather(comm, &[comm.rank() as f64]).unwrap();
            let b = allgather(comm, &[comm.rank() as f64 * 2.0]).unwrap();
            let c = allreduce(comm, &[1.0], ReduceOp::Sum).unwrap();
            (a, b, c)
        });
        for (a, b, c) in results {
            assert_eq!(a, vec![0.0, 1.0, 2.0, 3.0]);
            assert_eq!(b, vec![0.0, 2.0, 4.0, 6.0]);
            assert_eq!(c, vec![4.0]);
        }
    }
}
