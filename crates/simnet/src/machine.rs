//! The simulated machine: spawns ranks, runs the SPMD program, collects costs.

use crate::comm::{Communicator, Endpoint, POISON_CONTEXT};
use crate::cost::{CostCounters, CostReport};
use crate::error::SimError;
use crate::fault::{FaultInjector, FaultPlan, FaultState};
use crate::gate::RankGate;
use crate::message::Envelope;
use crate::params::MachineParams;
use crate::Result;
use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A simulated machine with `p` processors and α–β–γ parameters.
///
/// [`Machine::run`] executes one SPMD closure on every processor (each on its
/// own OS thread), moving real data between them, and returns both the
/// per-rank results and the aggregated [`CostReport`].
///
/// Rank execution is throttled to the host's real cores: at most
/// `rank_workers` ranks (default [`dense::dense_threads`], override with
/// [`Machine::with_rank_workers`]) *compute* concurrently, with blocked
/// receivers giving their compute slot back, and each rank's local dense
/// kernels get a proportional share of the worker pool via
/// [`dense::with_thread_budget`].  Both knobs only affect scheduling, never
/// results — runs are bitwise deterministic at every worker count.
///
/// A machine can optionally carry a [`FaultPlan`]
/// ([`Machine::with_fault_plan`]): every run then injects the plan's
/// deterministic fault schedule into the transport.
#[derive(Debug, Clone)]
pub struct Machine {
    procs: usize,
    params: MachineParams,
    faults: Option<FaultPlan>,
    rank_workers: Option<usize>,
}

/// The outcome of a machine run: one result per rank plus the cost report.
#[derive(Debug, Clone)]
pub struct RunOutput<T> {
    /// Value returned by each rank's closure, indexed by world rank.
    pub results: Vec<T>,
    /// Aggregated communication/computation costs.
    pub report: CostReport,
}

impl Machine {
    /// Create a machine with `procs` processors.
    pub fn new(procs: usize, params: MachineParams) -> Self {
        Machine {
            procs,
            params,
            faults: None,
            rank_workers: None,
        }
    }

    /// Attach a deterministic fault plan: every subsequent [`Machine::run`]
    /// injects exactly the same seeded fault schedule.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override how many ranks may *compute* concurrently (the default is
    /// [`dense::dense_threads`], i.e. the dense worker pool's width).  This
    /// is a scheduling knob only: results are bitwise identical at every
    /// value, so tests can compare `with_rank_workers(1)` against
    /// `with_rank_workers(4)` in one process regardless of `DENSE_THREADS`.
    pub fn with_rank_workers(mut self, workers: usize) -> Self {
        self.rank_workers = Some(workers.max(1));
        self
    }

    /// The effective bound on concurrently-computing ranks.
    pub fn rank_workers(&self) -> usize {
        self.rank_workers
            .unwrap_or_else(dense::dense_threads)
            .max(1)
    }

    /// The fault plan attached to this machine, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Run an SPMD closure on every processor and collect results and costs.
    ///
    /// The closure receives this rank's world [`Communicator`].  If any rank
    /// panics, the run is aborted (a poison message wakes up ranks blocked in
    /// `recv`) and an [`SimError::RankPanicked`] is returned.
    pub fn run<T, F>(&self, f: F) -> Result<RunOutput<T>>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        if self.procs == 0 {
            return Err(SimError::EmptyMachine);
        }
        let p = self.procs;
        let params = self.params;

        // Rank scheduling: bound concurrently-computing ranks to the worker
        // pool's width (no gate needed when every rank fits), and give each
        // rank's local dense kernels a proportional share of the pool.
        let workers = self.rank_workers();
        let gate = (workers < p).then(|| Arc::new(RankGate::new(workers)));
        let share = (workers / p.min(workers)).max(1);

        // Build the all-to-all channel fabric.
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);

        let f = &f;
        let mut rank_outputs: Vec<Option<(T, CostCounters)>> = Vec::with_capacity(p);
        for _ in 0..p {
            rank_outputs.push(None);
        }

        let mut panicked: Vec<usize> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let fault_plan = self.faults.clone();
                let gate = gate.clone();
                let handle = scope.spawn(move || {
                    // Take a compute slot before running user code; the RAII
                    // permit is returned when the thread retires (or unwinds)
                    // and temporarily given back inside blocking receives.
                    let _permit = gate.as_ref().map(|g| g.acquire_permit());
                    // One span per rank thread: each rank records on its own
                    // wall lane, so the trace shows which ranks actually ran
                    // concurrently.
                    let _span = obs::span_with("simnet", "rank", "rank", rank as u64);
                    let endpoint = Endpoint {
                        world_rank: rank,
                        world_size: p,
                        senders: Arc::clone(&senders),
                        receiver,
                        pending: Default::default(),
                        params,
                        clock: 0.0,
                        counters: CostCounters::default(),
                        faults: fault_plan
                            .as_ref()
                            .map(|plan| FaultState::new(FaultInjector::new(plan, rank))),
                        inflight_until: 0.0,
                        gate: gate.clone(),
                    };
                    let comm = Communicator::world(endpoint);
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        dense::with_thread_budget(share, || f(&comm))
                    }));
                    match result {
                        Ok(value) => {
                            // Release any reorder-held envelope before the
                            // rank retires, so its receiver is not starved.
                            comm.finalize();
                            let counters = comm.counters();
                            Ok((value, counters))
                        }
                        Err(_) => {
                            // Wake up every other rank that might be blocked
                            // waiting for a message from us (or anyone).
                            for (dest, tx) in senders.iter().enumerate() {
                                if dest != rank {
                                    let _ = tx.send(Envelope {
                                        src: rank,
                                        context: POISON_CONTEXT,
                                        tag: 0,
                                        data: Vec::new(),
                                        avail_time: 0.0,
                                        seq: 0,
                                    });
                                }
                            }
                            Err(rank)
                        }
                    }
                });
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(output)) => rank_outputs[rank] = Some(output),
                    Ok(Err(panicked_rank)) => panicked.push(panicked_rank),
                    Err(_) => panicked.push(rank),
                }
            }
        });

        if let Some(&rank) = panicked.first() {
            return Err(SimError::RankPanicked { rank });
        }

        let mut results = Vec::with_capacity(p);
        let mut counters = Vec::with_capacity(p);
        for (rank, output) in rank_outputs.into_iter().enumerate() {
            // Unreachable unless a join failed without being recorded above;
            // surface it as a structured error rather than panicking.
            let Some((value, c)) = output else {
                return Err(SimError::RankPanicked { rank });
            };
            results.push(value);
            counters.push(c);
        }
        Ok(RunOutput {
            results,
            report: CostReport::new(counters, params),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_machine_is_rejected() {
        let m = Machine::new(0, MachineParams::unit());
        assert!(matches!(m.run(|_| ()), Err(SimError::EmptyMachine)));
    }

    #[test]
    fn single_rank_runs_without_communication() {
        let m = Machine::new(1, MachineParams::unit());
        let out = m.run(|comm| comm.rank() * 10).unwrap();
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.report.max_messages(), 0);
        assert_eq!(out.report.max_words(), 0);
    }

    #[test]
    fn ring_pass_moves_data_and_charges_costs() {
        let p = 8;
        let m = Machine::new(p, MachineParams::unit());
        let out = m
            .run(|comm| {
                let rank = comm.rank();
                let next = (rank + 1) % comm.size();
                let prev = (rank + comm.size() - 1) % comm.size();
                comm.send(next, 0, &[rank as f64; 4]).unwrap();
                let got = comm.recv(prev, 0).unwrap();
                got[0] as usize
            })
            .unwrap();
        for rank in 0..p {
            assert_eq!(out.results[rank], (rank + p - 1) % p);
        }
        // Each rank sent exactly one 4-word message and received one.
        for c in &out.report.per_rank {
            assert_eq!(c.msgs_sent, 1);
            assert_eq!(c.msgs_recv, 1);
            assert_eq!(c.words_sent, 4);
            assert_eq!(c.words_recv, 4);
        }
        assert_eq!(out.report.max_messages(), 1);
        assert_eq!(out.report.max_words(), 4);
        // Unit params: one message of 4 words costs 1 + 4 = 5 time units on
        // the sender; the matching receive happens concurrently.
        assert!((out.report.virtual_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn flops_are_charged_to_clock() {
        let m = Machine::new(2, MachineParams::new(0.0, 0.0, 2.0));
        let out = m
            .run(|comm| {
                comm.charge_flops(10);
                comm.clock()
            })
            .unwrap();
        assert_eq!(out.results, vec![20.0, 20.0]);
        assert_eq!(out.report.max_flops(), 10);
    }

    #[test]
    fn clock_propagates_through_messages() {
        // Rank 0 does a lot of local work, then sends to rank 1; rank 1's
        // clock must catch up to rank 0's send time.
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.charge_flops(100);
                    comm.send(1, 0, &[1.0]).unwrap();
                } else {
                    let _ = comm.recv(0, 0).unwrap();
                }
                comm.clock()
            })
            .unwrap();
        // Sender: 100 flops + (α + β·1) = 102.  Receiver clock catches up to 102.
        assert!((out.results[0] - 102.0).abs() < 1e-12);
        assert!((out.results[1] - 102.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_hides_flops_under_a_posted_send() {
        // Rank 0 posts a 9-word send (α + β·9 = 10 time units) and then does
        // 6 flops.  Without overlap the clock reads 10 + 6 = 16; with
        // overlap the flops hide entirely under the transfer, so the final
        // clock is max(10, 6) = 10 and the saving (6) lands in `overlap`.
        let program = |comm: &Communicator| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[0.0; 9]).unwrap();
                comm.charge_flops(6);
            } else {
                let _ = comm.recv(0, 0).unwrap();
            }
        };
        let plain = Machine::new(2, MachineParams::unit()).run(program).unwrap();
        assert!((plain.report.per_rank[0].time - 16.0).abs() < 1e-12);
        assert_eq!(plain.report.per_rank[0].overlap, 0.0);

        let params = MachineParams::unit().with_overlap(true);
        let overlapped = Machine::new(2, params).run(program).unwrap();
        assert!((overlapped.report.per_rank[0].time - 10.0).abs() < 1e-12);
        assert!((overlapped.report.per_rank[0].overlap - 6.0).abs() < 1e-12);
        // The receiver still sees the message at the transfer's completion.
        assert!((overlapped.report.per_rank[1].time - 10.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_drains_inflight_sends_at_finalize() {
        // A rank that posts a send and immediately retires must still pay
        // the transfer: its final clock is the in-flight horizon.
        let params = MachineParams::unit().with_overlap(true);
        let out = Machine::new(2, params)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[0.0; 4]).unwrap();
                } else {
                    let _ = comm.recv(0, 0).unwrap();
                }
            })
            .unwrap();
        assert!((out.report.per_rank[0].time - 5.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_serializes_back_to_back_sends_on_the_link() {
        // Two posted sends share one outgoing link: the second transfer
        // starts when the first completes, so the horizon is 2·(α + β·4).
        let params = MachineParams::unit().with_overlap(true);
        let out = Machine::new(2, params)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[0.0; 4]).unwrap();
                    comm.send(1, 1, &[0.0; 4]).unwrap();
                } else {
                    let _ = comm.recv(0, 0).unwrap();
                    let _ = comm.recv(0, 1).unwrap();
                }
            })
            .unwrap();
        assert!((out.report.per_rank[0].time - 10.0).abs() < 1e-12);
        assert!((out.report.per_rank[1].time - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rank_workers_do_not_change_results_or_virtual_time() {
        let run = |workers: usize| {
            Machine::new(6, MachineParams::unit())
                .with_rank_workers(workers)
                .run(ring_program)
                .unwrap()
        };
        let one = run(1);
        for workers in [2, 4, 16] {
            let w = run(workers);
            assert_eq!(one.results, w.results);
            for (a, b) in one.report.per_rank.iter().zip(w.report.per_rank.iter()) {
                assert_eq!(a, b, "counters diverged at {workers} rank workers");
            }
        }
    }

    #[test]
    fn rank_workers_accessor_clamps_and_defaults() {
        let m = Machine::new(4, MachineParams::unit());
        assert!(m.rank_workers() >= 1);
        assert_eq!(m.clone().with_rank_workers(3).rank_workers(), 3);
        assert_eq!(m.with_rank_workers(0).rank_workers(), 1);
    }

    #[test]
    fn panic_under_a_rank_gate_still_unblocks_everyone() {
        // One compute slot for four ranks: the panicking rank must return
        // its permit during unwind or the others would never be scheduled.
        let m = Machine::new(4, MachineParams::unit()).with_rank_workers(1);
        let res: Result<RunOutput<()>> = m.run(|comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            let _ = comm.recv(2, 0);
        });
        assert!(matches!(res, Err(SimError::RankPanicked { .. })));
    }

    #[test]
    fn panic_in_one_rank_is_reported_not_hung() {
        let m = Machine::new(4, MachineParams::unit());
        let res: Result<RunOutput<()>> = m.run(|comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block waiting for rank 2 and must be woken by the
            // poison message instead of hanging forever.
            let _ = comm.recv(2, 0);
        });
        assert!(matches!(res, Err(SimError::RankPanicked { .. })));
    }

    #[test]
    fn sendrecv_exchanges_symmetrically() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                let partner = 1 - comm.rank();
                let data = vec![comm.rank() as f64 + 10.0; 3];
                let got = comm.sendrecv(partner, 7, &data).unwrap();
                got[0]
            })
            .unwrap();
        assert_eq!(out.results, vec![11.0, 10.0]);
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                let send_err = comm.send(5, 0, &[1.0]).is_err();
                let recv_err = comm.recv(9, 0).is_err();
                send_err && recv_err
            })
            .unwrap();
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn tags_keep_messages_apart() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, &[1.0]).unwrap();
                    comm.send(1, 2, &[2.0]).unwrap();
                    0.0
                } else {
                    // Receive in the opposite order of sending.
                    let two = comm.recv(0, 2).unwrap();
                    let one = comm.recv(0, 1).unwrap();
                    two[0] * 10.0 + one[0]
                }
            })
            .unwrap();
        assert_eq!(out.results[1], 21.0);
    }

    #[test]
    fn subgroups_communicate_independently() {
        let m = Machine::new(4, MachineParams::unit());
        let out = m
            .run(|comm| {
                // Two pairs: {0,1} and {2,3}; each pair exchanges its ranks.
                let sub = comm.split_by(|r| r / 2).unwrap();
                assert_eq!(sub.size(), 2);
                let partner = 1 - sub.rank();
                let got = sub.sendrecv(partner, 0, &[comm.rank() as f64]).unwrap();
                got[0] as usize
            })
            .unwrap();
        assert_eq!(out.results, vec![1, 0, 3, 2]);
    }

    #[test]
    fn subgroup_membership_errors() {
        let m = Machine::new(3, MachineParams::unit());
        let out = m.run(|comm| comm.subgroup(&[0, 1]).is_err()).unwrap();
        assert_eq!(out.results, vec![false, false, true]);
    }

    /// Ring exchange used by the fault-mode tests below.
    fn ring_program(comm: &Communicator) -> Vec<f64> {
        let rank = comm.rank();
        let p = comm.size();
        let next = (rank + 1) % p;
        let prev = (rank + p - 1) % p;
        for round in 0..4u64 {
            comm.send(next, round, &[rank as f64, round as f64, 42.0])
                .unwrap();
            let got = comm.recv(prev, round).unwrap();
            assert_eq!(got[0] as usize, prev);
        }
        crate::coll::allreduce(comm, &[rank as f64 + 1.0], crate::coll::ReduceOp::Sum).unwrap()
    }

    #[test]
    fn transient_faults_are_bit_transparent() {
        let p = 6;
        let clean = Machine::new(p, MachineParams::unit())
            .run(ring_program)
            .unwrap();
        let plan = FaultPlan::new(0xfeed_beef)
            .with_drops(0.4, 2)
            .with_delays(0.3, 5.0)
            .with_duplicates(0.3)
            .with_reordering(0.3)
            .with_stalls(0.2, 3.0);
        assert!(plan.is_transient(&MachineParams::unit()));
        let faulty = Machine::new(p, MachineParams::unit())
            .with_fault_plan(plan)
            .run(ring_program)
            .unwrap();
        assert_eq!(clean.results, faulty.results);
        // Something actually happened: drops were retried or dups suppressed.
        let activity = faulty.report.total_retries() + faulty.report.total_duplicates();
        assert!(activity > 0, "fault plan injected nothing");
        assert_eq!(faulty.report.total_timeouts(), 0);
    }

    #[test]
    fn fault_runs_are_deterministic_across_repeats() {
        let p = 5;
        let plan = FaultPlan::new(0x5eed)
            .with_drops(0.5, 2)
            .with_duplicates(0.4)
            .with_reordering(0.4);
        let runs: Vec<_> = (0..3)
            .map(|_| {
                Machine::new(p, MachineParams::unit())
                    .with_fault_plan(plan.clone())
                    .run(ring_program)
                    .unwrap()
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.results, runs[0].results);
            for (a, b) in r.report.per_rank.iter().zip(runs[0].report.per_rank.iter()) {
                assert_eq!(a.retries, b.retries);
                assert_eq!(a.dropped, b.dropped);
                assert_eq!(a.duplicates, b.duplicates);
                assert_eq!(a.time, b.time);
            }
        }
    }

    #[test]
    fn crashed_rank_surfaces_rank_failure_without_hanging() {
        let p = 4;
        let plan = FaultPlan::new(7).with_crash(2, 1);
        let out = Machine::new(p, MachineParams::unit())
            .with_fault_plan(plan)
            .run(|comm| {
                let rank = comm.rank();
                let next = (rank + 1) % comm.size();
                let prev = (rank + comm.size() - 1) % comm.size();
                let mut err = None;
                for round in 0..4u64 {
                    if let Err(e) = comm.send(next, round, &[rank as f64]) {
                        err = Some(e);
                        break;
                    }
                    match comm.recv(prev, round) {
                        Ok(_) => {}
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                err
            })
            .unwrap();
        // Every rank observed a typed failure rooted at rank 2.
        for (rank, res) in out.results.iter().enumerate() {
            let err = res
                .as_ref()
                .unwrap_or_else(|| panic!("rank {rank} finished cleanly despite the crash"));
            assert!(
                matches!(err, SimError::RankFailure { rank: 2 }),
                "rank {rank} got {err:?}"
            );
        }
    }

    #[test]
    fn exhausted_retry_budget_surfaces_timeout() {
        let p = 2;
        // Every send is dropped up to 5 times but the budget is 1 retry.
        let plan = FaultPlan::new(99).with_drops(1.0, 5);
        let params = MachineParams::unit().with_retry(1.0, 1);
        assert!(!plan.is_transient(&params));
        let out = Machine::new(p, params)
            .with_fault_plan(plan)
            .run(|comm| {
                let partner = 1 - comm.rank();
                let send = comm.send(partner, 0, &[1.0]);
                let recv = comm.recv(partner, 0);
                (send.err(), recv.err())
            })
            .unwrap();
        let mut saw_timeout = false;
        for (send_err, recv_err) in &out.results {
            if let Some(SimError::Timeout { attempts, .. }) = send_err {
                assert!(*attempts >= 1);
                saw_timeout = true;
            }
            assert!(send_err.is_some() || recv_err.is_some());
        }
        assert!(saw_timeout, "no rank hit the retry budget");
        assert!(out.report.total_timeouts() > 0);
    }

    #[test]
    fn machine_without_plan_reports_zero_fault_counters() {
        let out = Machine::new(4, MachineParams::unit())
            .run(ring_program)
            .unwrap();
        assert_eq!(out.report.total_retries(), 0);
        assert_eq!(out.report.total_duplicates(), 0);
        assert_eq!(out.report.total_timeouts(), 0);
    }

    #[test]
    fn world_rank_mapping_in_subgroup() {
        let m = Machine::new(4, MachineParams::unit());
        let out = m
            .run(|comm| {
                let sub = comm.subgroup(&[1, 3]);
                match sub {
                    Ok(s) => {
                        assert_eq!(s.world_rank_of(0), 1);
                        assert_eq!(s.world_rank_of(1), 3);
                        assert_eq!(s.local_rank_of_world(3), Some(1));
                        s.rank() as i64
                    }
                    Err(_) => -1,
                }
            })
            .unwrap();
        assert_eq!(out.results, vec![-1, 0, -1, 1]);
    }
}
