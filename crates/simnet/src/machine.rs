//! The simulated machine: spawns ranks, runs the SPMD program, collects costs.

use crate::comm::{Communicator, Endpoint, POISON_CONTEXT};
use crate::cost::{CostCounters, CostReport};
use crate::error::SimError;
use crate::message::Envelope;
use crate::params::MachineParams;
use crate::Result;
use crossbeam::channel::unbounded;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A simulated machine with `p` processors and α–β–γ parameters.
///
/// [`Machine::run`] executes one SPMD closure on every processor (each on its
/// own OS thread), moving real data between them, and returns both the
/// per-rank results and the aggregated [`CostReport`].
#[derive(Debug, Clone)]
pub struct Machine {
    procs: usize,
    params: MachineParams,
}

/// The outcome of a machine run: one result per rank plus the cost report.
#[derive(Debug, Clone)]
pub struct RunOutput<T> {
    /// Value returned by each rank's closure, indexed by world rank.
    pub results: Vec<T>,
    /// Aggregated communication/computation costs.
    pub report: CostReport,
}

impl Machine {
    /// Create a machine with `procs` processors.
    pub fn new(procs: usize, params: MachineParams) -> Self {
        Machine { procs, params }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The machine parameters.
    pub fn params(&self) -> MachineParams {
        self.params
    }

    /// Run an SPMD closure on every processor and collect results and costs.
    ///
    /// The closure receives this rank's world [`Communicator`].  If any rank
    /// panics, the run is aborted (a poison message wakes up ranks blocked in
    /// `recv`) and an [`SimError::RankPanicked`] is returned.
    pub fn run<T, F>(&self, f: F) -> Result<RunOutput<T>>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        if self.procs == 0 {
            return Err(SimError::EmptyMachine);
        }
        let p = self.procs;
        let params = self.params;

        // Build the all-to-all channel fabric.
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);

        let f = &f;
        let mut rank_outputs: Vec<Option<(T, CostCounters)>> = Vec::with_capacity(p);
        for _ in 0..p {
            rank_outputs.push(None);
        }

        let mut panicked: Vec<usize> = Vec::new();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, receiver) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                let handle = scope.spawn(move || {
                    let endpoint = Endpoint {
                        world_rank: rank,
                        world_size: p,
                        senders: Arc::clone(&senders),
                        receiver,
                        pending: Default::default(),
                        params,
                        clock: 0.0,
                        counters: CostCounters::default(),
                    };
                    let comm = Communicator::world(endpoint);
                    let result = catch_unwind(AssertUnwindSafe(|| f(&comm)));
                    match result {
                        Ok(value) => {
                            let counters = comm.counters();
                            Ok((value, counters))
                        }
                        Err(_) => {
                            // Wake up every other rank that might be blocked
                            // waiting for a message from us (or anyone).
                            for (dest, tx) in senders.iter().enumerate() {
                                if dest != rank {
                                    let _ = tx.send(Envelope {
                                        src: rank,
                                        context: POISON_CONTEXT,
                                        tag: 0,
                                        data: Vec::new(),
                                        avail_time: 0.0,
                                    });
                                }
                            }
                            Err(rank)
                        }
                    }
                });
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(output)) => rank_outputs[rank] = Some(output),
                    Ok(Err(panicked_rank)) => panicked.push(panicked_rank),
                    Err(_) => panicked.push(rank),
                }
            }
        });

        if let Some(&rank) = panicked.first() {
            return Err(SimError::RankPanicked { rank });
        }

        let mut results = Vec::with_capacity(p);
        let mut counters = Vec::with_capacity(p);
        for output in rank_outputs {
            let (value, c) = output.expect("all ranks completed");
            results.push(value);
            counters.push(c);
        }
        Ok(RunOutput {
            results,
            report: CostReport::new(counters, params),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_machine_is_rejected() {
        let m = Machine::new(0, MachineParams::unit());
        assert!(matches!(m.run(|_| ()), Err(SimError::EmptyMachine)));
    }

    #[test]
    fn single_rank_runs_without_communication() {
        let m = Machine::new(1, MachineParams::unit());
        let out = m.run(|comm| comm.rank() * 10).unwrap();
        assert_eq!(out.results, vec![0]);
        assert_eq!(out.report.max_messages(), 0);
        assert_eq!(out.report.max_words(), 0);
    }

    #[test]
    fn ring_pass_moves_data_and_charges_costs() {
        let p = 8;
        let m = Machine::new(p, MachineParams::unit());
        let out = m
            .run(|comm| {
                let rank = comm.rank();
                let next = (rank + 1) % comm.size();
                let prev = (rank + comm.size() - 1) % comm.size();
                comm.send(next, 0, &[rank as f64; 4]).unwrap();
                let got = comm.recv(prev, 0).unwrap();
                got[0] as usize
            })
            .unwrap();
        for rank in 0..p {
            assert_eq!(out.results[rank], (rank + p - 1) % p);
        }
        // Each rank sent exactly one 4-word message and received one.
        for c in &out.report.per_rank {
            assert_eq!(c.msgs_sent, 1);
            assert_eq!(c.msgs_recv, 1);
            assert_eq!(c.words_sent, 4);
            assert_eq!(c.words_recv, 4);
        }
        assert_eq!(out.report.max_messages(), 1);
        assert_eq!(out.report.max_words(), 4);
        // Unit params: one message of 4 words costs 1 + 4 = 5 time units on
        // the sender; the matching receive happens concurrently.
        assert!((out.report.virtual_time() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn flops_are_charged_to_clock() {
        let m = Machine::new(2, MachineParams::new(0.0, 0.0, 2.0));
        let out = m
            .run(|comm| {
                comm.charge_flops(10);
                comm.clock()
            })
            .unwrap();
        assert_eq!(out.results, vec![20.0, 20.0]);
        assert_eq!(out.report.max_flops(), 10);
    }

    #[test]
    fn clock_propagates_through_messages() {
        // Rank 0 does a lot of local work, then sends to rank 1; rank 1's
        // clock must catch up to rank 0's send time.
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.charge_flops(100);
                    comm.send(1, 0, &[1.0]).unwrap();
                } else {
                    let _ = comm.recv(0, 0).unwrap();
                }
                comm.clock()
            })
            .unwrap();
        // Sender: 100 flops + (α + β·1) = 102.  Receiver clock catches up to 102.
        assert!((out.results[0] - 102.0).abs() < 1e-12);
        assert!((out.results[1] - 102.0).abs() < 1e-12);
    }

    #[test]
    fn panic_in_one_rank_is_reported_not_hung() {
        let m = Machine::new(4, MachineParams::unit());
        let res: Result<RunOutput<()>> = m.run(|comm| {
            if comm.rank() == 2 {
                panic!("boom");
            }
            // Other ranks block waiting for rank 2 and must be woken by the
            // poison message instead of hanging forever.
            let _ = comm.recv(2, 0);
        });
        assert!(matches!(res, Err(SimError::RankPanicked { .. })));
    }

    #[test]
    fn sendrecv_exchanges_symmetrically() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                let partner = 1 - comm.rank();
                let data = vec![comm.rank() as f64 + 10.0; 3];
                let got = comm.sendrecv(partner, 7, &data).unwrap();
                got[0]
            })
            .unwrap();
        assert_eq!(out.results, vec![11.0, 10.0]);
    }

    #[test]
    fn out_of_range_ranks_are_rejected() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                let send_err = comm.send(5, 0, &[1.0]).is_err();
                let recv_err = comm.recv(9, 0).is_err();
                send_err && recv_err
            })
            .unwrap();
        assert_eq!(out.results, vec![true, true]);
    }

    #[test]
    fn tags_keep_messages_apart() {
        let m = Machine::new(2, MachineParams::unit());
        let out = m
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, &[1.0]).unwrap();
                    comm.send(1, 2, &[2.0]).unwrap();
                    0.0
                } else {
                    // Receive in the opposite order of sending.
                    let two = comm.recv(0, 2).unwrap();
                    let one = comm.recv(0, 1).unwrap();
                    two[0] * 10.0 + one[0]
                }
            })
            .unwrap();
        assert_eq!(out.results[1], 21.0);
    }

    #[test]
    fn subgroups_communicate_independently() {
        let m = Machine::new(4, MachineParams::unit());
        let out = m
            .run(|comm| {
                // Two pairs: {0,1} and {2,3}; each pair exchanges its ranks.
                let sub = comm.split_by(|r| r / 2).unwrap();
                assert_eq!(sub.size(), 2);
                let partner = 1 - sub.rank();
                let got = sub.sendrecv(partner, 0, &[comm.rank() as f64]).unwrap();
                got[0] as usize
            })
            .unwrap();
        assert_eq!(out.results, vec![1, 0, 3, 2]);
    }

    #[test]
    fn subgroup_membership_errors() {
        let m = Machine::new(3, MachineParams::unit());
        let out = m.run(|comm| comm.subgroup(&[0, 1]).is_err()).unwrap();
        assert_eq!(out.results, vec![false, false, true]);
    }

    #[test]
    fn world_rank_mapping_in_subgroup() {
        let m = Machine::new(4, MachineParams::unit());
        let out = m
            .run(|comm| {
                let sub = comm.subgroup(&[1, 3]);
                match sub {
                    Ok(s) => {
                        assert_eq!(s.world_rank_of(0), 1);
                        assert_eq!(s.world_rank_of(1), 3);
                        assert_eq!(s.local_rank_of_world(3), Some(1));
                        s.rank() as i64
                    }
                    Err(_) => -1,
                }
            })
            .unwrap();
        assert_eq!(out.results, vec![-1, 0, -1, 1]);
    }
}
