//! Error type for the simulated machine.

use std::fmt;

/// Errors surfaced by the simulated machine and its collectives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A rank index was outside `0..p`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The communicator size.
        size: usize,
    },
    /// A machine was created with zero processors.
    EmptyMachine,
    /// A collective was called with inconsistent arguments across ranks
    /// (detected locally, e.g. a buffer whose size is not divisible by the
    /// communicator size).
    BadCollectiveArgs {
        /// Which collective complained.
        op: &'static str,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// One of the SPMD rank closures panicked; the machine run was aborted.
    RankPanicked {
        /// Rank whose closure panicked.
        rank: usize,
    },
    /// A communicator split produced an empty group for this rank.
    NotInGroup,
    /// A point-to-point transfer exhausted its retry budget: the message was
    /// dropped on every attempt and the sender gave up.
    Timeout {
        /// World rank of the sender that timed out.
        src: usize,
        /// World rank of the intended receiver.
        dest: usize,
        /// Number of transmission attempts made before giving up.
        attempts: u32,
    },
    /// A rank failed permanently (crashed under a fault plan, or stopped
    /// participating after its own permanent fault) and the operation could
    /// not complete.
    RankFailure {
        /// World rank of the failed processor (the root cause, propagated
        /// through failure notifications).
        rank: usize,
    },
    /// The underlying message channel closed while a rank was waiting —
    /// the machine is shutting down.
    ChannelClosed,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            SimError::EmptyMachine => write!(f, "machine must have at least one processor"),
            SimError::BadCollectiveArgs { op, reason } => {
                write!(f, "bad arguments to collective `{op}`: {reason}")
            }
            SimError::RankPanicked { rank } => write!(f, "rank {rank} panicked during execution"),
            SimError::NotInGroup => write!(f, "this rank is not a member of the requested group"),
            SimError::Timeout {
                src,
                dest,
                attempts,
            } => write!(
                f,
                "send from rank {src} to rank {dest} timed out after {attempts} attempts"
            ),
            SimError::RankFailure { rank } => {
                write!(f, "rank {rank} failed permanently during execution")
            }
            SimError::ChannelClosed => {
                write!(f, "message channel closed while waiting for a message")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::InvalidRank { rank: 5, size: 4 }
            .to_string()
            .contains("5"));
        assert!(SimError::EmptyMachine.to_string().contains("at least one"));
        assert!(SimError::RankPanicked { rank: 2 }.to_string().contains("2"));
        assert!(SimError::NotInGroup.to_string().contains("member"));
        let e = SimError::BadCollectiveArgs {
            op: "allgather",
            reason: "x".into(),
        };
        assert!(e.to_string().contains("allgather"));
        let e = SimError::Timeout {
            src: 1,
            dest: 3,
            attempts: 7,
        };
        assert!(e.to_string().contains("timed out"));
        assert!(e.to_string().contains("7"));
        assert!(SimError::RankFailure { rank: 4 }
            .to_string()
            .contains("failed permanently"));
        assert!(SimError::ChannelClosed.to_string().contains("closed"));
    }
}
