//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] describes *which* faults a run should experience: message
//! drops (recovered by the transport's timeout/resend protocol), in-flight
//! delays, duplicated deliveries, reordered deliveries, rank stalls and rank
//! crashes.  Every fault is drawn from a seeded [`SplitMix64`] PRNG that is
//! derived from `(plan.seed, world_rank)` and advanced once per send
//! operation, so the fault schedule of a rank depends only on the plan and on
//! that rank's own operation order — never on thread interleaving.  Running
//! the same program twice under the same plan therefore injects *exactly* the
//! same faults.
//!
//! Faults split into two classes:
//!
//! * **transient** faults (drops within the retry budget, delays, duplicates,
//!   reorders, stalls) are absorbed by the transport layer in
//!   [`crate::comm`]: they cost virtual time and bump the fault counters, but
//!   every payload is still delivered exactly once, in order per match key —
//!   so any program, collectives included, computes bit-identical results;
//! * **permanent** faults (a crashed rank, a retry budget exhausted) surface
//!   as [`crate::SimError::RankFailure`] / [`crate::SimError::Timeout`] from
//!   the communication call and make the failing endpoint broadcast a failure
//!   notification, so every other rank unblocks with a typed error instead of
//!   hanging.

use crate::error::SimError;
use crate::message::Envelope;
use crate::params::MachineParams;
use std::collections::HashSet;

/// A splittable, tiny, high-quality PRNG (Steele et al.'s SplitMix64).
///
/// Used instead of an external `rand` dependency; the fault subsystem needs
/// nothing more than a reproducible uniform stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[1, max]` (`max ≥ 1`).
    fn next_in_1_to(&mut self, max: u32) -> u32 {
        1 + (self.next_u64() % max as u64) as u32
    }
}

/// A rank crash scheduled by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// World rank that crashes.
    pub rank: usize,
    /// Number of send operations the rank completes before crashing (the
    /// crash happens *instead of* send number `after_sends`, zero-based).
    pub after_sends: u64,
}

/// A seeded description of the faults injected into one machine run.
///
/// All probabilities are per *send operation*.  The default plan injects
/// nothing; use the builder methods to enable fault classes.  Plans are plain
/// data: the same plan given to the same program always produces the same
/// fault schedule (see [`FaultInjector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every rank's fault stream is derived.
    pub seed: u64,
    /// Probability that a send is dropped at least once and must be resent.
    pub drop_prob: f64,
    /// Maximum number of consecutive drops of one message.  If this exceeds
    /// [`MachineParams::max_retries`], the plan can exhaust the retry budget
    /// and becomes a *permanent* fault plan.
    pub max_drops_per_msg: u32,
    /// Probability that a delivered message is delayed in flight.
    pub delay_prob: f64,
    /// Maximum in-flight delay (virtual seconds), drawn uniformly.
    pub max_delay: f64,
    /// Probability that a delivered message is duplicated on the wire.
    pub dup_prob: f64,
    /// Probability that a message is held back and overtaken by the sender's
    /// next message to a different destination/stream.
    pub reorder_prob: f64,
    /// Probability that the sender stalls before a send operation.
    pub stall_prob: f64,
    /// Maximum stall duration (virtual seconds), drawn uniformly.
    pub max_stall: f64,
    /// Ranks that crash permanently at a given operation index.
    pub crashes: Vec<CrashPoint>,
}

impl FaultPlan {
    /// A plan that injects no faults (useful as a builder starting point).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            max_drops_per_msg: 1,
            delay_prob: 0.0,
            max_delay: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            stall_prob: 0.0,
            max_stall: 0.0,
            crashes: Vec::new(),
        }
    }

    /// Enable message drops: each send is dropped (and resent by the
    /// transport) with probability `prob`, between 1 and `max_drops` times.
    pub fn with_drops(mut self, prob: f64, max_drops: u32) -> Self {
        self.drop_prob = prob;
        self.max_drops_per_msg = max_drops.max(1);
        self
    }

    /// Enable in-flight delays of up to `max_delay` virtual seconds.
    pub fn with_delays(mut self, prob: f64, max_delay: f64) -> Self {
        self.delay_prob = prob;
        self.max_delay = max_delay;
        self
    }

    /// Enable duplicated deliveries.
    pub fn with_duplicates(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Enable message reordering (a message may be overtaken by the sender's
    /// next message to a different stream).
    pub fn with_reordering(mut self, prob: f64) -> Self {
        self.reorder_prob = prob;
        self
    }

    /// Enable sender stalls of up to `max_stall` virtual seconds.
    pub fn with_stalls(mut self, prob: f64, max_stall: f64) -> Self {
        self.stall_prob = prob;
        self.max_stall = max_stall;
        self
    }

    /// Schedule a permanent crash of `rank` before its send number
    /// `after_sends` (zero-based).
    pub fn with_crash(mut self, rank: usize, after_sends: u64) -> Self {
        self.crashes.push(CrashPoint { rank, after_sends });
        self
    }

    /// Whether this plan is *transient* under the given retry budget: no rank
    /// crashes, and no message can be dropped more often than the transport
    /// will resend it.  Programs run under a transient plan complete with
    /// bit-identical results; non-transient (permanent) plans make at least
    /// one communication call return a typed error.
    pub fn is_transient(&self, params: &MachineParams) -> bool {
        self.crashes.is_empty()
            && (self.drop_prob <= 0.0 || self.max_drops_per_msg <= params.max_retries)
    }
}

/// The faults drawn for one send operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendFaults {
    /// Number of times the message is dropped before getting through
    /// (each drop charges one failed attempt plus a backoff wait).
    pub drops: u32,
    /// Extra in-flight delay added to the message's availability time.
    pub delay: f64,
    /// Whether the message is duplicated on the wire.
    pub duplicate: bool,
    /// Whether the message is held back to be overtaken by the next send.
    pub reorder: bool,
    /// Stall charged to the sender before the operation.
    pub stall: f64,
    /// Whether the rank crashes at this operation instead of sending.
    pub crash: bool,
}

impl SendFaults {
    /// No faults at all.
    pub fn none() -> Self {
        SendFaults {
            drops: 0,
            delay: 0.0,
            duplicate: false,
            reorder: false,
            stall: 0.0,
            crash: false,
        }
    }
}

/// Per-rank deterministic fault source.
///
/// One injector is created per rank per run, seeded from the plan seed and
/// the world rank.  [`FaultInjector::next_send`] advances the stream by one
/// send operation; the sequence of [`SendFaults`] it returns depends only on
/// `(plan, world_rank)` and the call count — never on wall-clock time, thread
/// scheduling or other ranks.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    sends: u64,
    crash_after: Option<u64>,
}

impl FaultInjector {
    /// Create the injector for `world_rank` under `plan`.
    pub fn new(plan: &FaultPlan, world_rank: usize) -> Self {
        // Decorrelate per-rank streams: mix the rank into the seed through
        // one SplitMix64 step (a common stream-splitting idiom).
        let mut seeder =
            SplitMix64::new(plan.seed ^ (world_rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let rng = SplitMix64::new(seeder.next_u64());
        let crash_after = plan
            .crashes
            .iter()
            .filter(|c| c.rank == world_rank)
            .map(|c| c.after_sends)
            .min();
        FaultInjector {
            plan: plan.clone(),
            rng,
            sends: 0,
            crash_after,
        }
    }

    /// Draw the faults for the next send operation.
    ///
    /// Every probability consumes exactly one PRNG draw whether or not it
    /// triggers, so fault schedules for different fault classes stay aligned
    /// across plans that differ only in probabilities.
    pub fn next_send(&mut self) -> SendFaults {
        let op = self.sends;
        self.sends += 1;
        if self.crash_after.is_some_and(|after| op >= after) {
            return SendFaults {
                crash: true,
                ..SendFaults::none()
            };
        }
        let drop_roll = self.rng.next_f64();
        let drops = if drop_roll < self.plan.drop_prob {
            self.rng.next_in_1_to(self.plan.max_drops_per_msg)
        } else {
            0
        };
        let delay_roll = self.rng.next_f64();
        let delay = if delay_roll < self.plan.delay_prob {
            self.rng.next_f64() * self.plan.max_delay
        } else {
            0.0
        };
        let duplicate = self.rng.next_f64() < self.plan.dup_prob;
        let reorder = self.rng.next_f64() < self.plan.reorder_prob;
        let stall_roll = self.rng.next_f64();
        let stall = if stall_roll < self.plan.stall_prob {
            self.rng.next_f64() * self.plan.max_stall
        } else {
            0.0
        };
        SendFaults {
            drops,
            delay,
            duplicate,
            reorder,
            stall,
            crash: false,
        }
    }

    /// Number of send operations drawn so far.
    pub fn sends_drawn(&self) -> u64 {
        self.sends
    }
}

/// Mutable per-endpoint fault state (lives inside the endpoint of a rank when
/// the machine runs under a fault plan).
pub(crate) struct FaultState {
    /// The deterministic fault source for this rank.
    pub injector: FaultInjector,
    /// Next sequence number to stamp on an outgoing envelope (1-based;
    /// `seq = 0` is reserved for control messages).
    pub next_seq: u64,
    /// `(source world rank, seq)` pairs already accepted — receive-side dedup.
    pub seen: HashSet<(usize, u64)>,
    /// An envelope held back by a reorder fault, with its destination.
    pub held: Option<(usize, Envelope)>,
    /// Ranks known (from failure notifications) to have failed permanently.
    pub failed_ranks: HashSet<usize>,
    /// First permanent failure observed by this endpoint (sticky).
    pub failure: Option<SimError>,
    /// Whether this endpoint has already broadcast its failure notification.
    pub notified: bool,
}

impl FaultState {
    pub(crate) fn new(injector: FaultInjector) -> Self {
        FaultState {
            injector,
            next_seq: 0,
            seen: HashSet::new(),
            held: None,
            failed_ranks: HashSet::new(),
            failure: None,
            notified: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn injector_schedules_are_reproducible() {
        let plan = FaultPlan::new(1234)
            .with_drops(0.3, 2)
            .with_delays(0.2, 5.0)
            .with_duplicates(0.1)
            .with_reordering(0.1)
            .with_stalls(0.05, 3.0);
        for rank in 0..4 {
            let mut a = FaultInjector::new(&plan, rank);
            let mut b = FaultInjector::new(&plan, rank);
            for _ in 0..200 {
                assert_eq!(a.next_send(), b.next_send());
            }
        }
    }

    #[test]
    fn different_ranks_get_different_streams() {
        let plan = FaultPlan::new(99).with_drops(0.5, 3);
        let sched = |rank: usize| -> Vec<SendFaults> {
            let mut inj = FaultInjector::new(&plan, rank);
            (0..50).map(|_| inj.next_send()).collect()
        };
        assert_ne!(sched(0), sched(1));
    }

    #[test]
    fn crash_point_fires_at_the_right_op() {
        let plan = FaultPlan::new(5).with_crash(2, 3);
        let mut inj = FaultInjector::new(&plan, 2);
        for _ in 0..3 {
            assert!(!inj.next_send().crash);
        }
        assert!(inj.next_send().crash);
        assert!(inj.next_send().crash, "crash is sticky");
        let mut other = FaultInjector::new(&plan, 1);
        for _ in 0..10 {
            assert!(!other.next_send().crash);
        }
    }

    #[test]
    fn transience_depends_on_retry_budget() {
        let params = MachineParams::unit(); // max_retries = 6
        assert!(FaultPlan::new(1).is_transient(&params));
        assert!(FaultPlan::new(1).with_drops(0.5, 3).is_transient(&params));
        assert!(!FaultPlan::new(1).with_drops(0.5, 9).is_transient(&params));
        assert!(!FaultPlan::new(1).with_crash(0, 5).is_transient(&params));
        assert!(FaultPlan::new(1)
            .with_delays(1.0, 10.0)
            .with_duplicates(1.0)
            .with_reordering(1.0)
            .with_stalls(1.0, 4.0)
            .is_transient(&params));
    }

    #[test]
    fn probabilities_actually_fire() {
        let plan = FaultPlan::new(2024)
            .with_drops(0.5, 2)
            .with_delays(0.5, 1.0)
            .with_duplicates(0.5)
            .with_reordering(0.5)
            .with_stalls(0.5, 1.0);
        let mut inj = FaultInjector::new(&plan, 0);
        let mut saw = SendFaults::none();
        for _ in 0..200 {
            let f = inj.next_send();
            saw.drops += f.drops;
            saw.delay += f.delay;
            saw.duplicate |= f.duplicate;
            saw.reorder |= f.reorder;
            saw.stall += f.stall;
        }
        assert!(saw.drops > 0);
        assert!(saw.delay > 0.0);
        assert!(saw.duplicate);
        assert!(saw.reorder);
        assert!(saw.stall > 0.0);
    }
}
