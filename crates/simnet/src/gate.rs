//! Compute-concurrency gate for simulated ranks.
//!
//! A [`Machine`](crate::Machine) spawns one OS thread per rank, but the host
//! rarely has one core per simulated processor.  The gate is a counting
//! semaphore that bounds how many ranks *compute* at once to the dense worker
//! pool's width: a rank holds a permit while it runs user code and releases
//! it whenever it blocks on a receive, so waiting ranks never pin a core.
//!
//! The gate is a pure scheduling throttle.  It decides *when* a rank runs,
//! never *what* it computes — all numerics are derived from rank-local state
//! and message payloads, whose per-stream FIFO order the transport guarantees
//! independently of thread interleaving — so results are bitwise identical at
//! every permit count (asserted by the distributed determinism matrix in
//! `tests/proptest_distributed.rs` and the CI `distributed-parallel` job).
//!
//! Deadlock freedom: sends never block (unbounded channels), and a blocked
//! receiver always gives its permit back before sleeping, so at least one
//! runnable rank can always make progress.

use std::sync::{Condvar, Mutex};

/// Counting semaphore bounding the number of concurrently-computing ranks.
pub(crate) struct RankGate {
    permits: Mutex<usize>,
    available: Condvar,
}

impl RankGate {
    /// A gate with `permits` compute slots (clamped to at least one).
    pub(crate) fn new(permits: usize) -> Self {
        RankGate {
            permits: Mutex::new(permits.max(1)),
            available: Condvar::new(),
        }
    }

    /// Block until a compute slot is free and take it.
    pub(crate) fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.available.wait(permits).unwrap();
        }
        *permits -= 1;
    }

    /// Give a compute slot back.
    pub(crate) fn release(&self) {
        let mut permits = self.permits.lock().unwrap();
        *permits += 1;
        drop(permits);
        self.available.notify_one();
    }

    /// RAII acquire: the slot is released on drop, including during a panic
    /// unwind, so a crashing rank can never strand the other ranks in
    /// [`RankGate::acquire`].
    pub(crate) fn acquire_permit(&self) -> Permit<'_> {
        self.acquire();
        Permit { gate: self }
    }
}

/// A held compute slot; gives the slot back when dropped.
pub(crate) struct Permit<'a> {
    gate: &'a RankGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn permits_bound_concurrency() {
        let gate = Arc::new(RankGate::new(2));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (gate, active, peak) = (gate.clone(), active.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let _permit = gate.acquire_permit();
                let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::yield_now();
                active.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn zero_permits_clamps_to_one() {
        let gate = RankGate::new(0);
        let permit = gate.acquire_permit();
        drop(permit);
        gate.acquire();
        gate.release();
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = Arc::new(RankGate::new(1));
        let g = gate.clone();
        let _ = std::thread::spawn(move || {
            let _permit = g.acquire_permit();
            panic!("rank died");
        })
        .join();
        // The panicking thread's permit must have been returned.
        gate.acquire();
        gate.release();
    }
}
