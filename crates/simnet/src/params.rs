//! The α–β–γ machine parameters.

/// Machine parameters of the α–β–γ execution-time model (Section II-A of the
/// paper): per-message latency `alpha`, per-word inverse bandwidth `beta` and
/// per-flop time `gamma`.
///
/// The absolute values only matter for the virtual execution time
/// `T = α·S + β·W + γ·F`; the S/W/F counters themselves are independent of
/// them.  Presets are provided for a "unit" machine (α = β = γ = 1, useful in
/// tests), a commodity cluster and a supercomputer-like machine where the
/// α/β/γ ratios are large — the regime in which communication avoidance pays
/// off and which the paper targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Latency charged per message (seconds per message).
    pub alpha: f64,
    /// Inverse bandwidth charged per word (seconds per 8-byte word).
    pub beta: f64,
    /// Time charged per floating-point operation (seconds per flop).
    pub gamma: f64,
    /// Base receive-timeout before the transport resends a dropped message
    /// (seconds of model time); attempt `k` waits `retry_timeout · 2ᵏ`.
    /// Only exercised when a fault plan injects drops.
    pub retry_timeout: f64,
    /// Maximum number of resends before a dropped message surfaces as
    /// [`crate::SimError::Timeout`].
    pub max_retries: u32,
    /// When `true`, a posted send occupies the network *in the background*:
    /// its `α + β·w` transfer time advances an in-flight horizon instead of
    /// the sender's clock, and subsequent local computation hides under it —
    /// the rank is charged `max(comm, comp)` instead of `comm + comp` for
    /// such phases.  Hidden time is surfaced in
    /// [`crate::CostCounters::overlap`].  Defaults to `false`, which keeps
    /// the strict sequential charging of the paper's α–β–γ model.
    pub overlap: bool,
}

impl MachineParams {
    /// Default retry budget shared by the presets.
    const DEFAULT_MAX_RETRIES: u32 = 6;

    /// All three constants equal to one; time then equals `S + W + F`.
    pub fn unit() -> Self {
        MachineParams {
            alpha: 1.0,
            beta: 1.0,
            gamma: 1.0,
            retry_timeout: 8.0,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// A commodity-cluster-like machine: ~1 µs latency, ~1 GB/s per-word
    /// bandwidth for 8-byte words, ~10 Gflop/s per processor.
    pub fn cluster() -> Self {
        MachineParams {
            alpha: 1.0e-6,
            beta: 8.0e-9,
            gamma: 1.0e-10,
            retry_timeout: 8.0e-6,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// A supercomputer-like machine (higher bandwidth and flop rate, similar
    /// latency): the α ≫ β ≫ γ regime in which latency avoidance matters most.
    pub fn supercomputer() -> Self {
        MachineParams {
            alpha: 2.0e-6,
            beta: 8.0e-10,
            gamma: 2.0e-11,
            retry_timeout: 8.0e-6,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// A machine where only latency is charged (β = γ = 0): isolates the
    /// synchronization cost `S` in measured virtual time.
    pub fn latency_only() -> Self {
        MachineParams {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            retry_timeout: 8.0,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// A machine where only bandwidth is charged (α = γ = 0).
    pub fn bandwidth_only() -> Self {
        MachineParams {
            alpha: 0.0,
            beta: 1.0,
            gamma: 0.0,
            retry_timeout: 8.0,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// Custom α–β–γ parameters with the default retry budget.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Self {
        MachineParams {
            alpha,
            beta,
            gamma,
            retry_timeout: 1.0,
            max_retries: Self::DEFAULT_MAX_RETRIES,
            overlap: false,
        }
    }

    /// Override the retry budget (timeout base and maximum resends).
    pub fn with_retry(mut self, retry_timeout: f64, max_retries: u32) -> Self {
        self.retry_timeout = retry_timeout;
        self.max_retries = max_retries;
        self
    }

    /// Enable (or disable) communication/computation overlap: posted sends
    /// run in the background and local flops hide under them, charging
    /// `max(comm, comp)` per overlappable phase instead of `comm + comp`.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Execution time of `(s, w, f)` counts under these parameters.
    pub fn time(&self, s: u64, w: u64, f: u64) -> f64 {
        self.alpha * s as f64 + self.beta * w as f64 + self.gamma * f as f64
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let c = MachineParams::cluster();
        let s = MachineParams::supercomputer();
        assert!(c.alpha > c.beta && c.beta > c.gamma);
        assert!(s.alpha > s.beta && s.beta > s.gamma);
        assert!(s.beta < c.beta);
    }

    #[test]
    fn unit_time_is_sum() {
        let u = MachineParams::unit();
        assert_eq!(u.time(1, 2, 3), 6.0);
    }

    #[test]
    fn latency_only_ignores_words_and_flops() {
        let l = MachineParams::latency_only();
        assert_eq!(l.time(5, 1000, 1000), 5.0);
        let b = MachineParams::bandwidth_only();
        assert_eq!(b.time(5, 1000, 1000), 1000.0);
    }

    #[test]
    fn default_is_cluster() {
        assert_eq!(MachineParams::default(), MachineParams::cluster());
    }

    #[test]
    fn overlap_defaults_off_and_is_overridable() {
        assert!(!MachineParams::unit().overlap);
        assert!(!MachineParams::cluster().overlap);
        assert!(MachineParams::unit().with_overlap(true).overlap);
        assert!(
            !MachineParams::unit()
                .with_overlap(true)
                .with_overlap(false)
                .overlap
        );
    }

    #[test]
    fn retry_budget_is_overridable() {
        let p = MachineParams::unit().with_retry(2.5, 3);
        assert_eq!(p.retry_timeout, 2.5);
        assert_eq!(p.max_retries, 3);
        assert!(MachineParams::cluster().max_retries > 0);
    }
}
