//! The message envelope exchanged between simulated ranks.

/// A point-to-point message in flight between two ranks.
///
/// Ranks exchange `f64` payloads; higher-level crates encode whatever
/// structure they need (matrix blocks, headers) into the payload.  The
/// `avail_time` stamp carries the sender's virtual clock after the send was
/// charged — the receiver's clock is advanced to at least this value when the
/// message is consumed, which is how the virtual critical path propagates
/// across ranks.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Global rank of the sender.
    pub src: usize,
    /// Communicator context the message belongs to.
    pub context: u64,
    /// User/collective tag within the context.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f64>,
    /// Sender virtual time at which the message is fully transferred.
    pub avail_time: f64,
    /// Per-sender monotone sequence number used for receive-side duplicate
    /// suppression under fault injection.  `0` is reserved for control
    /// messages and for runs without a fault plan (where no dedup happens).
    pub seq: u64,
}

/// Key used to match incoming envelopes against `recv` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchKey {
    /// Global rank of the sender.
    pub src: usize,
    /// Communicator context.
    pub context: u64,
    /// Tag within the context.
    pub tag: u64,
}

impl Envelope {
    /// The matching key of this envelope.
    pub fn key(&self) -> MatchKey {
        MatchKey {
            src: self.src,
            context: self.context,
            tag: self.tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_reflects_fields() {
        let e = Envelope {
            src: 3,
            context: 7,
            tag: 11,
            data: vec![1.0, 2.0],
            avail_time: 0.5,
            seq: 0,
        };
        let k = e.key();
        assert_eq!(
            k,
            MatchKey {
                src: 3,
                context: 7,
                tag: 11
            }
        );
    }
}
