//! Communicators: point-to-point messaging, cost accounting and sub-groups.
//!
//! A [`Communicator`] is a handle to a group of simulated processors.  Each
//! rank's SPMD closure receives the *world* communicator; sub-communicators
//! (rows/columns/fibers of processor grids, the recursive halves of the
//! triangular inversion, the diagonal-block groups of the iterative TRSM) are
//! created with [`Communicator::subgroup`] / [`Communicator::split_by`]
//! without any communication — membership must be computable from rank
//! arithmetic alone, which is the case for every algorithm in the paper.
//!
//! All communicators created on one rank share that rank's *endpoint*: the
//! incoming message queue, the virtual clock and the cost counters.

use crate::cost::CostCounters;
use crate::error::SimError;
use crate::message::{Envelope, MatchKey};
use crate::params::MachineParams;
use crate::Result;
use crossbeam::channel::{Receiver, Sender};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Context id reserved for the poison message broadcast when a rank panics.
pub(crate) const POISON_CONTEXT: u64 = u64::MAX;

/// Context id of the world communicator.
const WORLD_CONTEXT: u64 = 1;

/// Per-rank communication endpoint: everything that is shared between all
/// communicators of one simulated processor.
pub(crate) struct Endpoint {
    /// This rank's index in the world communicator.
    pub world_rank: usize,
    /// Total number of ranks in the machine.
    pub world_size: usize,
    /// Channel senders to every rank (indexed by world rank).
    pub senders: Arc<Vec<Sender<Envelope>>>,
    /// This rank's receiving channel.
    pub receiver: Receiver<Envelope>,
    /// Messages that arrived but have not been matched by a `recv` yet.
    pub pending: HashMap<MatchKey, VecDeque<(Vec<f64>, f64)>>,
    /// α–β–γ parameters.
    pub params: MachineParams,
    /// Virtual clock (seconds of model time).
    pub clock: f64,
    /// Cost counters.
    pub counters: CostCounters,
}

impl Endpoint {
    fn charge_send(&mut self, words: usize) -> f64 {
        self.counters.msgs_sent += 1;
        self.counters.words_sent += words as u64;
        self.clock += self.params.alpha + self.params.beta * words as f64;
        self.counters.time = self.clock;
        self.clock
    }

    fn charge_recv(&mut self, words: usize, avail_time: f64) {
        self.counters.msgs_recv += 1;
        self.counters.words_recv += words as u64;
        if avail_time > self.clock {
            self.clock = avail_time;
        }
        self.counters.time = self.clock;
    }

    fn charge_flops(&mut self, flops: u64) {
        self.counters.flops += flops;
        self.clock += self.params.gamma * flops as f64;
        self.counters.time = self.clock;
    }

    /// Block until a message matching `key` is available and return it.
    fn wait_for(&mut self, key: MatchKey) -> (Vec<f64>, f64) {
        loop {
            if let Some(queue) = self.pending.get_mut(&key) {
                if let Some(msg) = queue.pop_front() {
                    if queue.is_empty() {
                        self.pending.remove(&key);
                    }
                    return msg;
                }
            }
            let env = self
                .receiver
                .recv()
                .expect("simnet: message channel closed unexpectedly");
            if env.context == POISON_CONTEXT {
                panic!(
                    "simnet: rank {} aborted because rank {} panicked",
                    self.world_rank, env.src
                );
            }
            self.pending
                .entry(env.key())
                .or_default()
                .push_back((env.data, env.avail_time));
        }
    }
}

/// A handle to a group of simulated processors sharing a communication
/// context.
///
/// Cloning a communicator is cheap (it shares the rank endpoint); clones keep
/// independent collective-operation counters, so use the *same* communicator
/// value across ranks for matching collective calls.
#[derive(Clone)]
pub struct Communicator {
    endpoint: Rc<RefCell<Endpoint>>,
    /// World ranks of the members, indexed by local rank.
    members: Arc<Vec<usize>>,
    /// This rank's index within `members`.
    my_index: usize,
    /// Context id distinguishing this communicator's traffic.
    context: u64,
    /// Number of collective/split operations issued so far on this handle.
    op_counter: Rc<RefCell<u64>>,
}

impl Communicator {
    /// Create the world communicator for one rank (used by [`crate::Machine`]).
    pub(crate) fn world(endpoint: Endpoint) -> Self {
        let size = endpoint.world_size;
        let rank = endpoint.world_rank;
        Communicator {
            endpoint: Rc::new(RefCell::new(endpoint)),
            members: Arc::new((0..size).collect()),
            my_index: rank,
            context: WORLD_CONTEXT,
            op_counter: Rc::new(RefCell::new(0)),
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.endpoint.borrow().world_rank
    }

    /// The world rank of local rank `r` in this communicator.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The machine parameters in effect.
    pub fn params(&self) -> MachineParams {
        self.endpoint.borrow().params
    }

    /// Current virtual clock of this rank.
    pub fn clock(&self) -> f64 {
        self.endpoint.borrow().clock
    }

    /// Snapshot of this rank's cost counters.
    pub fn counters(&self) -> CostCounters {
        self.endpoint.borrow().counters
    }

    /// Charge `flops` floating-point operations to this rank.
    pub fn charge_flops(&self, flops: u64) {
        self.endpoint.borrow_mut().charge_flops(flops);
    }

    /// Send `data` to local rank `dest` with a user tag.
    ///
    /// The sender is charged `α + β·len(data)`; the message carries the
    /// sender's clock so the receiver's clock catches up on receipt.
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) -> Result<()> {
        if dest >= self.size() {
            return Err(SimError::InvalidRank {
                rank: dest,
                size: self.size(),
            });
        }
        self.send_raw(dest, user_tag(tag), data);
        Ok(())
    }

    /// Receive a message with a user tag from local rank `src` (blocking).
    pub fn recv(&self, src: usize, tag: u64) -> Result<Vec<f64>> {
        if src >= self.size() {
            return Err(SimError::InvalidRank {
                rank: src,
                size: self.size(),
            });
        }
        Ok(self.recv_raw(src, user_tag(tag)))
    }

    /// Combined exchange with a partner: send `data` to `partner` and receive
    /// that partner's message with the same tag.
    pub fn sendrecv(&self, partner: usize, tag: u64, data: &[f64]) -> Result<Vec<f64>> {
        self.send(partner, tag, data)?;
        self.recv(partner, tag)
    }

    /// Internal send used by the collectives (separate tag namespace).
    pub(crate) fn send_raw(&self, dest: usize, tag: u64, data: &[f64]) {
        let world_dest = self.members[dest];
        let mut ep = self.endpoint.borrow_mut();
        let avail_time = ep.charge_send(data.len());
        let env = Envelope {
            src: ep.world_rank,
            context: self.context,
            tag,
            data: data.to_vec(),
            avail_time,
        };
        // The channel is unbounded; sending never blocks.  The receiver may
        // already have exited if it panicked, in which case we ignore the
        // failure (the poison mechanism will unwind everything).
        let _ = ep.senders[world_dest].send(env);
    }

    /// Internal receive used by the collectives.
    pub(crate) fn recv_raw(&self, src: usize, tag: u64) -> Vec<f64> {
        let world_src = self.members[src];
        let key = MatchKey {
            src: world_src,
            context: self.context,
            tag,
        };
        let mut ep = self.endpoint.borrow_mut();
        let (data, avail) = ep.wait_for(key);
        ep.charge_recv(data.len(), avail);
        data
    }

    /// Allocate a fresh base tag for a collective operation on this
    /// communicator.  Each collective call gets a disjoint tag range so that
    /// back-to-back collectives cannot confuse each other's messages.
    pub(crate) fn next_op_tag(&self) -> u64 {
        let mut c = self.op_counter.borrow_mut();
        *c += 1;
        *c * COLLECTIVE_TAG_STRIDE
    }

    /// Create a sub-communicator from an explicit member list (local ranks of
    /// this communicator, identical on every caller).  Returns
    /// `Err(SimError::NotInGroup)` if this rank is not in the list.
    ///
    /// No communication is performed and no cost is charged; membership must
    /// be derivable from rank arithmetic (true for all grids in the paper).
    pub fn subgroup(&self, members: &[usize]) -> Result<Communicator> {
        let op = self.next_op_tag();
        let my_index = match members.iter().position(|&m| m == self.my_index) {
            Some(i) => i,
            None => return Err(SimError::NotInGroup),
        };
        let world_members: Vec<usize> = members.iter().map(|&m| self.members[m]).collect();
        let context = derive_context(self.context, op, &world_members);
        Ok(Communicator {
            endpoint: Rc::clone(&self.endpoint),
            members: Arc::new(world_members),
            my_index,
            context,
            op_counter: Rc::new(RefCell::new(0)),
        })
    }

    /// Split the communicator by a color function evaluated on every local
    /// rank (the function must be identical on every caller).  Returns the
    /// sub-communicator containing this rank; local ranks keep their relative
    /// order.
    pub fn split_by<F: Fn(usize) -> usize>(&self, color_of: F) -> Result<Communicator> {
        let my_color = color_of(self.my_index);
        let members: Vec<usize> = (0..self.size())
            .filter(|&r| color_of(r) == my_color)
            .collect();
        // Keep op counters aligned across siblings: subgroup() bumps it once.
        self.subgroup(&members)
    }

    /// Duplicate the communicator with a fresh context (useful to isolate the
    /// traffic of concurrent algorithm phases).
    pub fn duplicate(&self) -> Communicator {
        let op = self.next_op_tag();
        let context = derive_context(self.context, op, &self.members);
        Communicator {
            endpoint: Rc::clone(&self.endpoint),
            members: Arc::clone(&self.members),
            my_index: self.my_index,
            context,
            op_counter: Rc::new(RefCell::new(0)),
        }
    }

    /// Translate a world rank into a local rank of this communicator, if the
    /// rank is a member.
    pub fn local_rank_of_world(&self, world_rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world_rank)
    }
}

/// Tag-space layout: user tags live in the upper half of the tag space so
/// they can never collide with collective-internal tags.
const USER_TAG_BASE: u64 = 1 << 63;
/// Each collective call owns a contiguous block of this many tags.
const COLLECTIVE_TAG_STRIDE: u64 = 1 << 20;

fn user_tag(tag: u64) -> u64 {
    USER_TAG_BASE | tag
}

/// Deterministically derive a child context id from the parent context, the
/// split operation index and the member list.  All members compute the same
/// value; different member sets get different contexts with overwhelming
/// probability (64-bit FNV-1a).
fn derive_context(parent: u64, op: u64, world_members: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(parent);
    mix(op);
    mix(world_members.len() as u64);
    for &m in world_members {
        mix(m as u64);
    }
    // Avoid colliding with the reserved world/poison contexts.
    if h == POISON_CONTEXT || h == WORLD_CONTEXT {
        h ^= 0x5555_5555_5555_5555;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_context_is_deterministic_and_distinguishes_groups() {
        let a = derive_context(1, 7, &[0, 1, 2, 3]);
        let b = derive_context(1, 7, &[0, 1, 2, 3]);
        let c = derive_context(1, 7, &[4, 5, 6, 7]);
        let d = derive_context(1, 8, &[0, 1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, POISON_CONTEXT);
    }

    #[test]
    fn user_tags_do_not_collide_with_collective_tags() {
        assert!(user_tag(0) > 100 * COLLECTIVE_TAG_STRIDE);
        assert_eq!(user_tag(5) & !USER_TAG_BASE, 5);
    }
}
