//! Communicators: point-to-point messaging, cost accounting and sub-groups.
//!
//! A [`Communicator`] is a handle to a group of simulated processors.  Each
//! rank's SPMD closure receives the *world* communicator; sub-communicators
//! (rows/columns/fibers of processor grids, the recursive halves of the
//! triangular inversion, the diagonal-block groups of the iterative TRSM) are
//! created with [`Communicator::subgroup`] / [`Communicator::split_by`]
//! without any communication — membership must be computable from rank
//! arithmetic alone, which is the case for every algorithm in the paper.
//!
//! All communicators created on one rank share that rank's *endpoint*: the
//! incoming message queue, the virtual clock and the cost counters.

use crate::cost::CostCounters;
use crate::error::SimError;
use crate::fault::FaultState;
use crate::gate::RankGate;
use crate::message::{Envelope, MatchKey};
use crate::params::MachineParams;
use crate::Result;
use crossbeam::channel::{Receiver, Sender};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Context id reserved for the poison message broadcast when a rank panics.
pub(crate) const POISON_CONTEXT: u64 = u64::MAX;

/// Context id reserved for failure notifications: when a rank hits a
/// permanent fault (crash, exhausted retry budget) it broadcasts one envelope
/// with this context so every other rank unblocks with a typed error instead
/// of hanging.  The payload carries the root failed rank.
pub(crate) const FAIL_CONTEXT: u64 = u64::MAX - 1;

/// Context id of the world communicator.
const WORLD_CONTEXT: u64 = 1;

/// Per-rank communication endpoint: everything that is shared between all
/// communicators of one simulated processor.
pub(crate) struct Endpoint {
    /// This rank's index in the world communicator.
    pub world_rank: usize,
    /// Total number of ranks in the machine.
    pub world_size: usize,
    /// Channel senders to every rank (indexed by world rank).
    pub senders: Arc<Vec<Sender<Envelope>>>,
    /// This rank's receiving channel.
    pub receiver: Receiver<Envelope>,
    /// Messages that arrived but have not been matched by a `recv` yet.
    pub pending: HashMap<MatchKey, VecDeque<(Vec<f64>, f64)>>,
    /// α–β–γ parameters.
    pub params: MachineParams,
    /// Virtual clock (seconds of model time).
    pub clock: f64,
    /// Cost counters.
    pub counters: CostCounters,
    /// Fault-injection state; `None` when the machine runs without a fault
    /// plan, in which case every fault-handling branch below is skipped and
    /// the transport is exactly the zero-overhead lossless network.
    pub faults: Option<FaultState>,
    /// Completion horizon of overlapped (in-flight) sends.  Only advanced
    /// when [`MachineParams::overlap`] is on; the rank's clock catches up to
    /// it at finalization, so a posted transfer is never lost from the
    /// virtual time even if no computation follows it.
    pub inflight_until: f64,
    /// Compute-concurrency gate shared by all ranks of the machine (`None`
    /// when rank execution is unbounded).  A rank releases its slot while
    /// blocked in a receive and takes it back before resuming computation.
    pub gate: Option<Arc<RankGate>>,
}

impl Endpoint {
    /// Virtual clock in integer nanoseconds, for sim-lane trace events.
    fn clock_ns(&self) -> u64 {
        (self.clock * 1e9) as u64
    }

    fn charge_send(&mut self, words: usize) -> f64 {
        self.counters.msgs_sent += 1;
        self.counters.words_sent += words as u64;
        let transfer = self.params.alpha + self.params.beta * words as f64;
        let avail = if self.params.overlap {
            // Overlap mode: the transfer occupies the single outgoing link in
            // the background, after any earlier in-flight send.  The sender's
            // own clock does not advance — subsequent local flops hide under
            // the transfer (`charge_flops` accounts the saving) and the clock
            // catches up to the in-flight horizon at finalization.
            let avail = self.clock.max(self.inflight_until) + transfer;
            self.inflight_until = avail;
            avail
        } else {
            self.clock += transfer;
            self.clock
        };
        self.counters.time = self.clock;
        if obs::enabled() {
            obs::sim_instant(
                self.world_rank,
                "simnet",
                "send",
                self.clock_ns(),
                "words",
                words as u64,
                "",
                0,
            );
        }
        avail
    }

    fn charge_recv(&mut self, words: usize, avail_time: f64) {
        self.counters.msgs_recv += 1;
        self.counters.words_recv += words as u64;
        if avail_time > self.clock {
            self.clock = avail_time;
        }
        self.counters.time = self.clock;
        if obs::enabled() {
            obs::sim_instant(
                self.world_rank,
                "simnet",
                "recv",
                self.clock_ns(),
                "words",
                words as u64,
                "",
                0,
            );
        }
    }

    fn charge_flops(&mut self, flops: u64) {
        self.counters.flops += flops;
        let start = self.clock;
        self.clock += self.params.gamma * flops as f64;
        if self.params.overlap && self.inflight_until > start {
            // This computation ran while a posted send was still on the
            // wire: the hidden portion is the saving of charging
            // `max(comm, comp)` instead of `comm + comp` for the phase.
            let hidden = self.clock.min(self.inflight_until) - start;
            if hidden > 0.0 {
                self.counters.overlap += hidden;
                if obs::enabled() {
                    obs::sim_instant(
                        self.world_rank,
                        "simnet",
                        "overlap",
                        self.clock_ns(),
                        "hidden_ns",
                        (hidden * 1e9) as u64,
                        "",
                        0,
                    );
                }
            }
        }
        self.counters.time = self.clock;
    }

    /// Catch the clock up to the in-flight send horizon: a rank cannot
    /// retire (or observe a phase boundary as complete) before its last
    /// posted transfer has left the wire.
    fn drain_inflight(&mut self) {
        if self.inflight_until > self.clock {
            self.clock = self.inflight_until;
            self.counters.time = self.clock;
        }
    }

    /// The sticky failure of this endpoint, if a permanent fault already hit.
    fn sticky_failure(&self) -> Option<SimError> {
        self.faults.as_ref().and_then(|fs| fs.failure.clone())
    }

    /// Record a permanent failure: remember it (first failure wins), notify
    /// every other rank exactly once so nobody waits on us forever, and
    /// return the sticky error.
    fn fail(&mut self, err: SimError) -> SimError {
        let world_rank = self.world_rank;
        let clock = self.clock;
        let Some(fs) = self.faults.as_mut() else {
            return err;
        };
        if fs.failure.is_none() {
            fs.failure = Some(err);
        }
        let sticky = fs.failure.clone().expect("failure just stored");
        let need_notify = !fs.notified;
        fs.notified = true;
        // A failing endpoint's held (reordered) envelope is discarded: the
        // rank is out of the computation and its peers get the notification.
        fs.held = None;
        let root = match &sticky {
            SimError::RankFailure { rank } => *rank,
            _ => world_rank,
        };
        if need_notify {
            for (dest, tx) in self.senders.iter().enumerate() {
                if dest != world_rank {
                    let _ = tx.send(Envelope {
                        src: world_rank,
                        context: FAIL_CONTEXT,
                        tag: 0,
                        data: vec![root as f64],
                        avail_time: clock,
                        seq: 0,
                    });
                }
            }
        }
        sticky
    }

    /// Release an envelope held back by a reorder fault, if any.  Called
    /// before blocking receives and at rank finalization, so a held message
    /// can never participate in a deadlock.
    fn flush_held(&mut self) {
        let held = match self.faults.as_mut() {
            Some(fs) => fs.held.take(),
            None => None,
        };
        if let Some((dest, env)) = held {
            let _ = self.senders[dest].send(env);
        }
    }

    /// Transmit one envelope, injecting faults when a plan is active.
    ///
    /// All fault outcomes are decided *here, at send time*, by this rank's
    /// deterministic injector: a dropped message never leaves a receiver
    /// waiting — the sender itself simulates the receive-timeout and the
    /// exponential-backoff resends (charging its own clock), and only the
    /// final successful attempt is physically delivered.  This keeps the
    /// payload stream per match key identical to the fault-free run, which is
    /// what makes transient fault plans bit-transparent to the computation.
    fn send_envelope(
        &mut self,
        world_dest: usize,
        context: u64,
        tag: u64,
        data: &[f64],
    ) -> Result<()> {
        if self.faults.is_none() {
            // Fast path: lossless network, zero fault overhead.
            let avail_time = self.charge_send(data.len());
            let _ = self.senders[world_dest].send(Envelope {
                src: self.world_rank,
                context,
                tag,
                data: data.to_vec(),
                avail_time,
                seq: 0,
            });
            return Ok(());
        }
        if let Some(err) = self.sticky_failure() {
            return Err(err);
        }
        let sf = self
            .faults
            .as_mut()
            .expect("fault state present")
            .injector
            .next_send();
        if sf.crash {
            let rank = self.world_rank;
            return Err(self.fail(SimError::RankFailure { rank }));
        }
        if sf.stall > 0.0 {
            self.clock += sf.stall;
            self.counters.time = self.clock;
        }
        // Timeout/resend protocol for injected drops: attempt k is charged
        // α + β·n plus a backoff wait of retry_timeout · 2ᵏ before resending.
        let words = data.len();
        let max_retries = self.params.max_retries;
        let lost = sf.drops.min(max_retries + 1);
        for attempt in 0..lost {
            self.counters.msgs_sent += 1;
            self.counters.words_sent += words as u64;
            self.counters.dropped += 1;
            self.counters.retries += 1;
            let backoff = self.params.retry_timeout * (1u64 << attempt.min(30)) as f64;
            self.clock += self.params.alpha + self.params.beta * words as f64 + backoff;
            self.counters.time = self.clock;
            if obs::enabled() {
                obs::sim_instant(
                    self.world_rank,
                    "simnet",
                    "retry",
                    self.clock_ns(),
                    "attempt",
                    attempt as u64 + 1,
                    "words",
                    words as u64,
                );
                obs::sim_instant(
                    self.world_rank,
                    "simnet",
                    "backoff",
                    self.clock_ns(),
                    "backoff_ns",
                    (backoff * 1e9) as u64,
                    "",
                    0,
                );
            }
        }
        if sf.drops > max_retries {
            self.counters.timeouts += 1;
            let (src, dest) = (self.world_rank, world_dest);
            return Err(self.fail(SimError::Timeout {
                src,
                dest,
                attempts: lost,
            }));
        }
        let avail_time = self.charge_send(words) + sf.delay;
        let seq = {
            let fs = self.faults.as_mut().expect("fault state present");
            fs.next_seq += 1;
            fs.next_seq
        };
        let env = Envelope {
            src: self.world_rank,
            context,
            tag,
            data: data.to_vec(),
            avail_time,
            seq,
        };
        // Reorder bookkeeping.  A held envelope for the *same* match stream
        // (destination, context, tag) is always released first so per-key
        // FIFO order — which the receive matching relies on — is preserved;
        // reordering therefore only shuffles arrival order across streams,
        // exactly like a real network.
        let held_prev = self
            .faults
            .as_mut()
            .expect("fault state present")
            .held
            .take();
        let same_stream = held_prev
            .as_ref()
            .is_some_and(|(d, h)| *d == world_dest && h.context == context && h.tag == tag);
        let deliver = |ep: &Endpoint, dest: usize, env: Envelope| {
            let _ = ep.senders[dest].send(env);
        };
        if same_stream {
            let (hd, he) = held_prev.expect("held envelope present");
            deliver(self, hd, he);
            if sf.reorder {
                self.faults.as_mut().expect("fault state present").held = Some((world_dest, env));
            } else {
                // A duplicated delivery is a network artifact: it costs the
                // sender no model time and is suppressed by seq-number dedup
                // on receipt.  It is *counted* here, at injection time, so
                // the counter is independent of thread-drain interleaving.
                if sf.duplicate {
                    self.counters.duplicates += 1;
                    deliver(self, world_dest, env.clone());
                }
                deliver(self, world_dest, env);
            }
        } else if sf.reorder && held_prev.is_none() {
            self.faults.as_mut().expect("fault state present").held = Some((world_dest, env));
        } else {
            if sf.duplicate {
                self.counters.duplicates += 1;
                deliver(self, world_dest, env.clone());
            }
            deliver(self, world_dest, env);
            if let Some((hd, he)) = held_prev {
                deliver(self, hd, he);
            }
        }
        Ok(())
    }

    /// Block until a message matching `key` is available and return it.
    fn wait_for(&mut self, key: MatchKey) -> Result<(Vec<f64>, f64)> {
        if let Some(err) = self.sticky_failure() {
            return Err(err);
        }
        // Never enter a blocking wait with a reordered envelope still held:
        // its receiver might be upstream of the message we are waiting for.
        self.flush_held();
        loop {
            if let Some(queue) = self.pending.get_mut(&key) {
                if let Some(msg) = queue.pop_front() {
                    if queue.is_empty() {
                        self.pending.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            if let Some(fs) = &self.faults {
                if fs.failed_ranks.contains(&key.src) {
                    let rank = key.src;
                    return Err(self.fail(SimError::RankFailure { rank }));
                }
            }
            // Fast path: a message is already queued — no need to touch the
            // compute gate.  Otherwise give the compute slot back while
            // blocked so another rank can run, and take it back before
            // resuming (the released window contains no panic point, so the
            // thread-level RAII permit stays balanced).
            let env = match self.receiver.try_recv() {
                Ok(env) => env,
                Err(_) => {
                    if let Some(gate) = &self.gate {
                        gate.release();
                    }
                    let received = self.receiver.recv();
                    if let Some(gate) = &self.gate {
                        gate.acquire();
                    }
                    match received {
                        Ok(env) => env,
                        Err(_) => return Err(SimError::ChannelClosed),
                    }
                }
            };
            if env.context == POISON_CONTEXT {
                panic!(
                    "simnet: rank {} aborted because rank {} panicked",
                    self.world_rank, env.src
                );
            }
            if env.context == FAIL_CONTEXT {
                // A peer failed permanently.  The collective in progress can
                // no longer complete machine-wide, so abort this wait with
                // the root cause (and cascade our own notification so ranks
                // waiting on *us* unblock too).
                let root = env.data.first().map(|&v| v as usize).unwrap_or(env.src);
                if let Some(fs) = self.faults.as_mut() {
                    fs.failed_ranks.insert(env.src);
                    fs.failed_ranks.insert(root);
                }
                return Err(self.fail(SimError::RankFailure { rank: root }));
            }
            // Receive-side dedup: suppress redelivery of an already-seen
            // (sender, sequence number) pair.
            let duplicate = match self.faults.as_mut() {
                Some(fs) => env.seq != 0 && !fs.seen.insert((env.src, env.seq)),
                None => false,
            };
            if duplicate {
                continue;
            }
            self.pending
                .entry(env.key())
                .or_default()
                .push_back((env.data, env.avail_time));
        }
    }
}

/// A handle to a group of simulated processors sharing a communication
/// context.
///
/// Cloning a communicator is cheap (it shares the rank endpoint); clones keep
/// independent collective-operation counters, so use the *same* communicator
/// value across ranks for matching collective calls.
#[derive(Clone)]
pub struct Communicator {
    endpoint: Rc<RefCell<Endpoint>>,
    /// World ranks of the members, indexed by local rank.
    members: Arc<Vec<usize>>,
    /// This rank's index within `members`.
    my_index: usize,
    /// Context id distinguishing this communicator's traffic.
    context: u64,
    /// Number of collective/split operations issued so far on this handle.
    op_counter: Rc<RefCell<u64>>,
}

impl Communicator {
    /// Create the world communicator for one rank (used by [`crate::Machine`]).
    pub(crate) fn world(endpoint: Endpoint) -> Self {
        let size = endpoint.world_size;
        let rank = endpoint.world_rank;
        Communicator {
            endpoint: Rc::new(RefCell::new(endpoint)),
            members: Arc::new((0..size).collect()),
            my_index: rank,
            context: WORLD_CONTEXT,
            op_counter: Rc::new(RefCell::new(0)),
        }
    }

    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.my_index
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index in the world communicator.
    pub fn world_rank(&self) -> usize {
        self.endpoint.borrow().world_rank
    }

    /// The world rank of local rank `r` in this communicator.
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.members[r]
    }

    /// The machine parameters in effect.
    pub fn params(&self) -> MachineParams {
        self.endpoint.borrow().params
    }

    /// Current virtual clock of this rank.
    pub fn clock(&self) -> f64 {
        self.endpoint.borrow().clock
    }

    /// Snapshot of this rank's cost counters.
    pub fn counters(&self) -> CostCounters {
        self.endpoint.borrow().counters
    }

    /// Charge `flops` floating-point operations to this rank.
    pub fn charge_flops(&self, flops: u64) {
        self.endpoint.borrow_mut().charge_flops(flops);
    }

    /// Send `data` to local rank `dest` with a user tag.
    ///
    /// The sender is charged `α + β·len(data)`; the message carries the
    /// sender's clock so the receiver's clock catches up on receipt.
    pub fn send(&self, dest: usize, tag: u64, data: &[f64]) -> Result<()> {
        if dest >= self.size() {
            return Err(SimError::InvalidRank {
                rank: dest,
                size: self.size(),
            });
        }
        self.send_raw(dest, user_tag(tag), data)
    }

    /// Receive a message with a user tag from local rank `src` (blocking).
    pub fn recv(&self, src: usize, tag: u64) -> Result<Vec<f64>> {
        if src >= self.size() {
            return Err(SimError::InvalidRank {
                rank: src,
                size: self.size(),
            });
        }
        self.recv_raw(src, user_tag(tag))
    }

    /// Combined exchange with a partner: send `data` to `partner` and receive
    /// that partner's message with the same tag.
    pub fn sendrecv(&self, partner: usize, tag: u64, data: &[f64]) -> Result<Vec<f64>> {
        self.send(partner, tag, data)?;
        self.recv(partner, tag)
    }

    /// Internal send used by the collectives (separate tag namespace).
    ///
    /// The channel is unbounded, so a send never blocks; it can still fail
    /// with a typed error when a fault plan injects a permanent fault
    /// (crashed rank, exhausted retry budget) on this endpoint.
    pub(crate) fn send_raw(&self, dest: usize, tag: u64, data: &[f64]) -> Result<()> {
        let world_dest = self.members[dest];
        self.endpoint
            .borrow_mut()
            .send_envelope(world_dest, self.context, tag, data)
    }

    /// Internal receive used by the collectives.  Fails with a typed error
    /// when a permanent fault makes the expected message impossible.
    pub(crate) fn recv_raw(&self, src: usize, tag: u64) -> Result<Vec<f64>> {
        let world_src = self.members[src];
        let key = MatchKey {
            src: world_src,
            context: self.context,
            tag,
        };
        let mut ep = self.endpoint.borrow_mut();
        let (data, avail) = ep.wait_for(key)?;
        ep.charge_recv(data.len(), avail);
        Ok(data)
    }

    /// Flush transport-internal state at the end of a rank's run: releases a
    /// reorder-held envelope so its receiver is never starved, and catches
    /// the clock up to any still-in-flight overlapped send.
    pub(crate) fn finalize(&self) {
        let mut ep = self.endpoint.borrow_mut();
        ep.flush_held();
        ep.drain_inflight();
    }

    /// Allocate a fresh base tag for a collective operation on this
    /// communicator.  Each collective call gets a disjoint tag range so that
    /// back-to-back collectives cannot confuse each other's messages.
    pub(crate) fn next_op_tag(&self) -> u64 {
        let mut c = self.op_counter.borrow_mut();
        *c += 1;
        *c * COLLECTIVE_TAG_STRIDE
    }

    /// Create a sub-communicator from an explicit member list (local ranks of
    /// this communicator, identical on every caller).  Returns
    /// `Err(SimError::NotInGroup)` if this rank is not in the list.
    ///
    /// No communication is performed and no cost is charged; membership must
    /// be derivable from rank arithmetic (true for all grids in the paper).
    pub fn subgroup(&self, members: &[usize]) -> Result<Communicator> {
        let op = self.next_op_tag();
        let my_index = match members.iter().position(|&m| m == self.my_index) {
            Some(i) => i,
            None => return Err(SimError::NotInGroup),
        };
        let world_members: Vec<usize> = members.iter().map(|&m| self.members[m]).collect();
        let context = derive_context(self.context, op, &world_members);
        Ok(Communicator {
            endpoint: Rc::clone(&self.endpoint),
            members: Arc::new(world_members),
            my_index,
            context,
            op_counter: Rc::new(RefCell::new(0)),
        })
    }

    /// Split the communicator by a color function evaluated on every local
    /// rank (the function must be identical on every caller).  Returns the
    /// sub-communicator containing this rank; local ranks keep their relative
    /// order.
    pub fn split_by<F: Fn(usize) -> usize>(&self, color_of: F) -> Result<Communicator> {
        let my_color = color_of(self.my_index);
        let members: Vec<usize> = (0..self.size())
            .filter(|&r| color_of(r) == my_color)
            .collect();
        // Keep op counters aligned across siblings: subgroup() bumps it once.
        self.subgroup(&members)
    }

    /// Duplicate the communicator with a fresh context (useful to isolate the
    /// traffic of concurrent algorithm phases).
    pub fn duplicate(&self) -> Communicator {
        let op = self.next_op_tag();
        let context = derive_context(self.context, op, &self.members);
        Communicator {
            endpoint: Rc::clone(&self.endpoint),
            members: Arc::clone(&self.members),
            my_index: self.my_index,
            context,
            op_counter: Rc::new(RefCell::new(0)),
        }
    }

    /// Translate a world rank into a local rank of this communicator, if the
    /// rank is a member.
    pub fn local_rank_of_world(&self, world_rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == world_rank)
    }
}

/// Tag-space layout: user tags live in the upper half of the tag space so
/// they can never collide with collective-internal tags.
const USER_TAG_BASE: u64 = 1 << 63;
/// Each collective call owns a contiguous block of this many tags.
const COLLECTIVE_TAG_STRIDE: u64 = 1 << 20;

fn user_tag(tag: u64) -> u64 {
    USER_TAG_BASE | tag
}

/// Deterministically derive a child context id from the parent context, the
/// split operation index and the member list.  All members compute the same
/// value; different member sets get different contexts with overwhelming
/// probability (64-bit FNV-1a).
fn derive_context(parent: u64, op: u64, world_members: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(parent);
    mix(op);
    mix(world_members.len() as u64);
    for &m in world_members {
        mix(m as u64);
    }
    // Avoid colliding with the reserved world/poison/failure contexts.
    if h == POISON_CONTEXT || h == FAIL_CONTEXT || h == WORLD_CONTEXT {
        h ^= 0x5555_5555_5555_5555;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_context_is_deterministic_and_distinguishes_groups() {
        let a = derive_context(1, 7, &[0, 1, 2, 3]);
        let b = derive_context(1, 7, &[0, 1, 2, 3]);
        let c = derive_context(1, 7, &[4, 5, 6, 7]);
        let d = derive_context(1, 8, &[0, 1, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_ne!(a, POISON_CONTEXT);
    }

    #[test]
    fn user_tags_do_not_collide_with_collective_tags() {
        assert!(user_tag(0) > 100 * COLLECTIVE_TAG_STRIDE);
        assert_eq!(user_tag(5) & !USER_TAG_BASE, 5);
    }
}
