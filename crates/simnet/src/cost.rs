//! Per-rank cost counters and machine-wide cost reports.

use crate::params::MachineParams;
use std::fmt;

/// Raw communication / computation counters accumulated by one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostCounters {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Words (f64 values) sent.
    pub words_sent: u64,
    /// Words (f64 values) received.
    pub words_recv: u64,
    /// Floating-point operations charged.
    pub flops: u64,
    /// Resend attempts made by the transport after injected message drops.
    pub retries: u64,
    /// Injected message drops absorbed by the retry protocol.
    pub dropped: u64,
    /// Injected duplicate deliveries (counted at the sending endpoint when
    /// the duplicate is injected; suppressed by receive-side dedup).
    pub duplicates: u64,
    /// Sends that exhausted the retry budget and surfaced as timeouts.
    pub timeouts: u64,
    /// Final value of the rank's virtual clock (seconds in model time).
    pub time: f64,
    /// Virtual seconds of computation hidden under in-flight communication
    /// (non-zero only when [`crate::MachineParams::overlap`] is on): the
    /// total saving of charging `max(comm, comp)` instead of `comm + comp`.
    pub overlap: f64,
}

impl CostCounters {
    /// Latency count `S` for this rank: the larger of messages sent and
    /// received (they overlap in the full-duplex model the paper assumes).
    pub fn latency(&self) -> u64 {
        self.msgs_sent.max(self.msgs_recv)
    }

    /// Bandwidth count `W` for this rank: the larger of words sent and
    /// received.
    pub fn bandwidth(&self) -> u64 {
        self.words_sent.max(self.words_recv)
    }

    /// Element-wise sum of two counter sets (virtual time takes the max,
    /// since times on different ranks do not add).
    pub fn merge(&self, other: &CostCounters) -> CostCounters {
        CostCounters {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            words_sent: self.words_sent + other.words_sent,
            words_recv: self.words_recv + other.words_recv,
            flops: self.flops + other.flops,
            retries: self.retries + other.retries,
            dropped: self.dropped + other.dropped,
            duplicates: self.duplicates + other.duplicates,
            timeouts: self.timeouts + other.timeouts,
            time: self.time.max(other.time),
            overlap: self.overlap + other.overlap,
        }
    }

    /// Element-wise sum of two counter deltas from the *same* rank, where the
    /// time components add (unlike [`CostCounters::merge`], which takes the
    /// max because times on different ranks do not add).
    pub fn accumulate(&self, delta: &CostCounters) -> CostCounters {
        CostCounters {
            time: self.time + delta.time,
            ..self.merge(delta)
        }
    }

    /// Difference of two counter snapshots taken on the *same* rank
    /// (`self` must be the later snapshot).  Used to attribute costs to a
    /// phase of an algorithm.
    pub fn since(&self, earlier: &CostCounters) -> CostCounters {
        CostCounters {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            msgs_recv: self.msgs_recv - earlier.msgs_recv,
            words_sent: self.words_sent - earlier.words_sent,
            words_recv: self.words_recv - earlier.words_recv,
            flops: self.flops - earlier.flops,
            retries: self.retries - earlier.retries,
            dropped: self.dropped - earlier.dropped,
            duplicates: self.duplicates - earlier.duplicates,
            timeouts: self.timeouts - earlier.timeouts,
            time: self.time - earlier.time,
            overlap: self.overlap - earlier.overlap,
        }
    }
}

/// Aggregated cost report for a whole machine run.
///
/// The paper's quantities are the *critical-path* values: the maximum over
/// ranks of S, W and F, and the virtual execution time
/// `T = α·S + β·W + γ·F` accumulated along the slowest dependency chain.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Counters of every rank, indexed by rank.
    pub per_rank: Vec<CostCounters>,
    /// Machine parameters the run used.
    pub params: MachineParams,
}

impl CostReport {
    /// Create a report from per-rank counters.
    pub fn new(per_rank: Vec<CostCounters>, params: MachineParams) -> Self {
        CostReport { per_rank, params }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Critical-path latency count `S` (max over ranks).
    pub fn max_messages(&self) -> u64 {
        self.per_rank.iter().map(|c| c.latency()).max().unwrap_or(0)
    }

    /// Critical-path bandwidth count `W` (max over ranks).
    pub fn max_words(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|c| c.bandwidth())
            .max()
            .unwrap_or(0)
    }

    /// Critical-path flop count `F` (max over ranks).
    pub fn max_flops(&self) -> u64 {
        self.per_rank.iter().map(|c| c.flops).max().unwrap_or(0)
    }

    /// Virtual execution time: the maximum final clock over all ranks.
    pub fn virtual_time(&self) -> f64 {
        self.per_rank.iter().map(|c| c.time).fold(0.0, f64::max)
    }

    /// Total words sent by all ranks (communication volume).
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|c| c.words_sent).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_messages(&self) -> u64 {
        self.per_rank.iter().map(|c| c.msgs_sent).sum()
    }

    /// Total flops over all ranks.
    pub fn total_flops(&self) -> u64 {
        self.per_rank.iter().map(|c| c.flops).sum()
    }

    /// Total resend attempts over all ranks (non-zero only under a fault
    /// plan that injects drops).
    pub fn total_retries(&self) -> u64 {
        self.per_rank.iter().map(|c| c.retries).sum()
    }

    /// Total suppressed duplicate deliveries over all ranks.
    pub fn total_duplicates(&self) -> u64 {
        self.per_rank.iter().map(|c| c.duplicates).sum()
    }

    /// Total sends that exhausted the retry budget over all ranks.
    pub fn total_timeouts(&self) -> u64 {
        self.per_rank.iter().map(|c| c.timeouts).sum()
    }

    /// Total virtual seconds of computation hidden under in-flight
    /// communication, over all ranks (non-zero only when
    /// [`MachineParams::overlap`] is on).
    pub fn total_overlap(&self) -> f64 {
        self.per_rank.iter().map(|c| c.overlap).sum()
    }

    /// Largest per-rank overlap saving (virtual seconds).
    pub fn max_overlap(&self) -> f64 {
        self.per_rank.iter().map(|c| c.overlap).fold(0.0, f64::max)
    }

    /// The model time implied by the critical-path counters,
    /// `α·max S + β·max W + γ·max F`.  This is an upper bound proxy; the
    /// measured [`CostReport::virtual_time`] tracks the actual dependency
    /// chain and is never larger than `p` times this value.
    pub fn counter_time(&self) -> f64 {
        self.params
            .time(self.max_messages(), self.max_words(), self.max_flops())
    }

    /// One-line summary used by the experiment binaries.
    pub fn summary(&self) -> String {
        format!(
            "p={:4}  S={:10}  W={:12}  F={:14}  T={:.6e}",
            self.num_ranks(),
            self.max_messages(),
            self.max_words(),
            self.max_flops(),
            self.virtual_time()
        )
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostReport over {} ranks", self.num_ranks())?;
        writeln!(
            f,
            "  critical path: S = {} messages, W = {} words, F = {} flops",
            self.max_messages(),
            self.max_words(),
            self.max_flops()
        )?;
        writeln!(f, "  virtual time:  {:.6e} s (model)", self.virtual_time())?;
        writeln!(
            f,
            "  totals:        {} messages, {} words, {} flops",
            self.total_messages(),
            self.total_words(),
            self.total_flops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: u64, r: u64, ws: u64, wr: u64, f: u64, t: f64) -> CostCounters {
        CostCounters {
            msgs_sent: s,
            msgs_recv: r,
            words_sent: ws,
            words_recv: wr,
            flops: f,
            time: t,
            ..CostCounters::default()
        }
    }

    #[test]
    fn latency_and_bandwidth_take_max_direction() {
        let x = c(3, 5, 10, 2, 0, 0.0);
        assert_eq!(x.latency(), 5);
        assert_eq!(x.bandwidth(), 10);
    }

    #[test]
    fn merge_adds_counts_and_maxes_time() {
        let a = c(1, 1, 10, 10, 100, 2.0);
        let b = c(2, 2, 20, 20, 200, 5.0);
        let m = a.merge(&b);
        assert_eq!(m.msgs_sent, 3);
        assert_eq!(m.words_recv, 30);
        assert_eq!(m.flops, 300);
        assert_eq!(m.time, 5.0);
    }

    #[test]
    fn since_subtracts() {
        let before = c(1, 1, 10, 10, 100, 2.0);
        let after = c(3, 4, 30, 15, 150, 6.0);
        let d = after.since(&before);
        assert_eq!(d.msgs_sent, 2);
        assert_eq!(d.msgs_recv, 3);
        assert_eq!(d.words_sent, 20);
        assert_eq!(d.words_recv, 5);
        assert_eq!(d.flops, 50);
        assert_eq!(d.time, 4.0);
    }

    #[test]
    fn report_maxima_and_totals() {
        let report = CostReport::new(
            vec![c(1, 2, 10, 20, 5, 1.0), c(4, 3, 40, 30, 50, 3.0)],
            MachineParams::unit(),
        );
        assert_eq!(report.num_ranks(), 2);
        assert_eq!(report.max_messages(), 4);
        assert_eq!(report.max_words(), 40);
        assert_eq!(report.max_flops(), 50);
        assert_eq!(report.virtual_time(), 3.0);
        assert_eq!(report.total_messages(), 5);
        assert_eq!(report.total_words(), 50);
        assert_eq!(report.total_flops(), 55);
        assert_eq!(report.counter_time(), (4 + 40 + 50) as f64);
        assert!(report.to_string().contains("2 ranks"));
        assert!(report.summary().contains("p="));
    }

    #[test]
    fn overlap_adds_in_merge_and_subtracts_in_since() {
        let a = CostCounters {
            overlap: 1.5,
            time: 4.0,
            ..CostCounters::default()
        };
        let b = CostCounters {
            overlap: 2.0,
            time: 3.0,
            ..CostCounters::default()
        };
        assert_eq!(a.merge(&b).overlap, 3.5);
        assert_eq!(a.accumulate(&b).overlap, 3.5);
        assert_eq!(b.merge(&a).since(&a).overlap, 2.0);
        let report = CostReport::new(vec![a, b], MachineParams::unit());
        assert_eq!(report.total_overlap(), 3.5);
        assert_eq!(report.max_overlap(), 2.0);
    }

    #[test]
    fn empty_report_is_zero() {
        let report = CostReport::new(vec![], MachineParams::unit());
        assert_eq!(report.max_messages(), 0);
        assert_eq!(report.virtual_time(), 0.0);
        assert_eq!(report.total_retries(), 0);
        assert_eq!(report.total_timeouts(), 0);
    }

    #[test]
    fn fault_counters_merge_accumulate_and_subtract() {
        let a = CostCounters {
            retries: 2,
            dropped: 2,
            duplicates: 1,
            timeouts: 0,
            time: 1.0,
            ..CostCounters::default()
        };
        let b = CostCounters {
            retries: 3,
            dropped: 4,
            duplicates: 0,
            timeouts: 1,
            time: 2.0,
            ..CostCounters::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.retries, 5);
        assert_eq!(m.dropped, 6);
        assert_eq!(m.duplicates, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.time, 2.0);
        let acc = a.accumulate(&b);
        assert_eq!(acc.retries, 5);
        assert_eq!(acc.time, 3.0);
        let d = m.since(&a);
        assert_eq!(d.retries, 3);
        assert_eq!(d.timeouts, 1);
        let report = CostReport::new(vec![a, b], MachineParams::unit());
        assert_eq!(report.total_retries(), 5);
        assert_eq!(report.total_duplicates(), 1);
        assert_eq!(report.total_timeouts(), 1);
    }
}
