//! Property-based tests of the collective library: for arbitrary processor
//! counts and payload sizes the collectives must deliver the mathematically
//! correct result and charge costs consistent with the α–β–γ schedules.

use proptest::prelude::*;
use simnet::{coll, Machine, MachineParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allgather returns every rank's contribution in rank order, for any
    /// processor count (including non-powers of two) and block size.
    #[test]
    fn allgather_is_correct(p in 1usize..10, blk in 1usize..40) {
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let mine: Vec<f64> = (0..blk).map(|w| (comm.rank() * 100 + w) as f64).collect();
                coll::allgather(comm, &mine).unwrap()
            })
            .unwrap();
        for result in out.results {
            prop_assert_eq!(result.len(), p * blk);
            for r in 0..p {
                for w in 0..blk {
                    prop_assert_eq!(result[r * blk + w], (r * 100 + w) as f64);
                }
            }
        }
    }

    /// Reduce-scatter + allgather equals allreduce equals the element-wise sum.
    #[test]
    fn reduction_collectives_agree(p in 1usize..9, blk in 1usize..16) {
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let len = blk * comm.size();
                let mine: Vec<f64> = (0..len).map(|w| (comm.rank() + w) as f64).collect();
                let via_allreduce = coll::allreduce(comm, &mine, coll::ReduceOp::Sum).unwrap();
                let scattered = coll::reduce_scatter(comm, &mine, coll::ReduceOp::Sum).unwrap();
                let via_pieces = coll::allgather(comm, &scattered).unwrap();
                via_allreduce == via_pieces
            })
            .unwrap();
        prop_assert!(out.results.into_iter().all(|v| v));
    }

    /// Broadcast delivers the root's data to everyone, for any root.
    #[test]
    fn bcast_from_any_root(p in 1usize..10, len in 1usize..50, root_sel in 0usize..10) {
        let root = root_sel % p;
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let data: Vec<f64> = if comm.rank() == root {
                    (0..len).map(|w| (w * 3 + 1) as f64).collect()
                } else {
                    Vec::new()
                };
                coll::bcast(comm, root, &data, len).unwrap()
            })
            .unwrap();
        let expect: Vec<f64> = (0..len).map(|w| (w * 3 + 1) as f64).collect();
        for r in out.results {
            prop_assert_eq!(r, expect.clone());
        }
    }

    /// Gather followed by scatter from the same root is the identity.
    #[test]
    fn gather_scatter_round_trip(p in 1usize..9, blk in 1usize..20, root_sel in 0usize..9) {
        let root = root_sel % p;
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let mine: Vec<f64> = (0..blk).map(|w| (comm.rank() * 7 + w) as f64).collect();
                let gathered = coll::gather(comm, root, &mine).unwrap();
                let buffer = gathered.unwrap_or_default();
                let back = coll::scatter(comm, root, &buffer, blk).unwrap();
                back == mine
            })
            .unwrap();
        prop_assert!(out.results.into_iter().all(|v| v));
    }

    /// All-to-all is an involution when applied twice with transposed blocks.
    #[test]
    fn alltoall_twice_restores(p in 1usize..9, blk in 1usize..8) {
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                let p = comm.size();
                let data: Vec<f64> = (0..p * blk)
                    .map(|w| (comm.rank() * 1000 + w) as f64)
                    .collect();
                let once = coll::alltoall(comm, &data, blk).unwrap();
                let twice = coll::alltoall(comm, &once, blk).unwrap();
                twice == data
            })
            .unwrap();
        prop_assert!(out.results.into_iter().all(|v| v));
    }

    /// Latency of the power-of-two collectives is exactly log2(p) rounds and
    /// the bandwidth of allgather is exactly blk·(p−1).
    #[test]
    fn allgather_cost_formula(p_exp in 1u32..5, blk in 1usize..64) {
        let p = 1usize << p_exp;
        let out = Machine::new(p, MachineParams::unit())
            .run(move |comm| {
                coll::allgather(comm, &vec![1.0; blk]).unwrap();
            })
            .unwrap();
        prop_assert_eq!(out.report.max_messages(), p_exp as u64);
        prop_assert_eq!(out.report.max_words(), (blk * (p - 1)) as u64);
    }

    /// The barrier never moves payload words and always completes.
    #[test]
    fn barrier_costs_only_latency(p in 1usize..12) {
        let out = Machine::new(p, MachineParams::unit())
            .run(|comm| coll::barrier(comm).unwrap())
            .unwrap();
        prop_assert_eq!(out.report.max_words(), 0);
        if p > 1 {
            prop_assert!(out.report.max_messages() >= (p as f64).log2().ceil() as u64);
        }
    }
}
