//! Block-diagonal triangular inversion (`Diagonal-Inverter`, Section VI-A).
//!
//! Before the iterative solve starts, the `n/n0` diagonal blocks
//! `L(S_g, S_g)` of size `n0 × n0` are inverted, each by a *distinct* group
//! of processors working concurrently.  The result `L̃` equals `L` except
//! that every diagonal block is replaced by its inverse; the off-diagonal
//! panels are untouched.  Replacing the small, latency-bound triangular
//! solves with multiplications by these explicit inverses is what removes the
//! `Θ(n/n0)` synchronisation bottleneck from the solve phase.
//!
//! Two cases, both handled here:
//!
//! * **fewer blocks than processors** — each block is redistributed onto its
//!   own sub-grid (the keyed all-to-all the paper bounds "by an all-to-all")
//!   and inverted with the distributed recursion of [`crate::tri_inv`];
//! * **more blocks than processors** — blocks are assigned round-robin, each
//!   processor inverts its blocks locally.
//!
//! Deviation recorded in DESIGN.md: the groups are formed from the processors
//! of the grid that owns `L` (the face of the 3D grid in `It-Inv-TRSM`)
//! rather than from all `p` processors; the phase remains non-dominant, which
//! experiment E5 verifies.

use crate::error::config_error;
use crate::tri_inv::{tri_inv, TriInvConfig};
use crate::Result;
use dense::{Matrix, Triangle};
use pgrid::redist::scatter_elements;
use pgrid::{DistMatrix, Grid2D};

/// Recursion cut-off of the *local* in-place inversions — fixed at the same
/// base size `dense::tri_invert` has always used, so local flop accounting
/// is independent of the configuration.  [`DiagInvConfig::inv_base`] is a
/// different knob: it controls the base case of the *distributed* inversion
/// used when several ranks share one diagonal block.
const INV_BASE: usize = 16;

/// Configuration of the block-diagonal inverter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiagInvConfig {
    /// Diagonal block size (`n0`); must divide the matrix dimension.
    pub n0: usize,
    /// Base-case size handed to the distributed triangular inversion.
    pub inv_base: usize,
    /// Route redistributions through the Bruck all-to-all.
    pub log_latency: bool,
}

/// Invert the diagonal blocks of a lower-triangular matrix distributed
/// cyclically over a square grid.  Returns `L̃`: a copy of `L` whose diagonal
/// `n0 × n0` blocks are replaced by their inverses.
pub fn diagonal_inverter(l: &DistMatrix, cfg: &DiagInvConfig) -> Result<DistMatrix> {
    let grid = l.grid();
    let q = grid.rows();
    let n = l.rows();
    let n0 = cfg.n0;

    if grid.rows() != grid.cols() {
        return Err(config_error(
            "diagonal_inverter",
            format!("grid must be square, got {}x{}", grid.rows(), grid.cols()),
        ));
    }
    if l.rows() != l.cols() {
        return Err(config_error(
            "diagonal_inverter",
            format!("matrix must be square, got {}x{}", l.rows(), l.cols()),
        ));
    }
    if n0 == 0 || !n.is_multiple_of(n0) {
        return Err(config_error(
            "diagonal_inverter",
            format!("block size n0 = {n0} must divide n = {n}"),
        ));
    }

    let comm = grid.comm();
    let p_face = q * q;
    let nblocks = n / n0;
    let mut l_tilde = l.clone();

    if p_face == 1 {
        // Single processor: invert every block locally, in place where it
        // lives — no extraction, inversion copy, or re-insertion.
        let local = l_tilde.local_mut();
        for g in 0..nblocks {
            let flops = dense::tri_invert_in_place(
                Triangle::Lower,
                &mut local.view_mut(g * n0, g * n0, n0, n0),
                INV_BASE,
            )?;
            comm.charge_flops(flops.get());
        }
        return Ok(l_tilde);
    }

    if nblocks >= p_face {
        // --- More blocks than processors: round-robin local inversions. ----
        // Collect each block on processor (g mod p_face).
        let mut elements = Vec::new();
        let local = l.local();
        for li in 0..local.rows() {
            let gi = l.global_row(li);
            for lj in 0..local.cols() {
                let gj = l.global_col(lj);
                if gj > gi || gi / n0 != gj / n0 {
                    continue;
                }
                let g = gi / n0;
                elements.push((gi, gj, local[(li, lj)], g % p_face));
            }
        }
        let received = scatter_elements(comm, n, elements, cfg.log_latency)?;

        // Invert the blocks this rank owns.
        let my_rank = comm.rank();
        let mut blocks: Vec<Matrix> = (0..nblocks).map(|_| Matrix::zeros(n0, n0)).collect();
        for (gi, gj, v) in received {
            let g = gi / n0;
            debug_assert_eq!(g % p_face, my_rank);
            blocks[g][(gi - g * n0, gj - g * n0)] = v;
        }
        let mut outgoing = Vec::new();
        for g in (my_rank..nblocks).step_by(p_face) {
            let block = &mut blocks[g];
            let flops =
                dense::tri_invert_in_place(Triangle::Lower, &mut block.as_view_mut(), INV_BASE)?;
            comm.charge_flops(flops.get());
            for bi in 0..n0 {
                for bj in 0..=bi {
                    let gi = g * n0 + bi;
                    let gj = g * n0 + bj;
                    outgoing.push((gi, gj, blocks[g][(bi, bj)], grid.rank_of(gi % q, gj % q)));
                }
            }
        }
        let incoming = scatter_elements(comm, n, outgoing, cfg.log_latency)?;
        place_into(&mut l_tilde, &incoming, q);
        return Ok(l_tilde);
    }

    // --- Fewer blocks than processors: one sub-grid per block. -------------
    let group_size = p_face / nblocks;
    // Largest power-of-two square that fits in the group.
    let mut side = 1usize;
    while 4 * side * side <= group_size {
        side *= 2;
    }
    if side * side * 2 <= group_size && (side * 2) * (side * 2) <= group_size {
        side *= 2;
    }
    let active = side * side;

    // Route each diagonal-block element to its destination inside the block's
    // sub-grid (cyclic layout over side × side).
    let mut elements = Vec::new();
    let local = l.local();
    for li in 0..local.rows() {
        let gi = l.global_row(li);
        for lj in 0..local.cols() {
            let gj = l.global_col(lj);
            if gj > gi || gi / n0 != gj / n0 {
                continue;
            }
            let g = gi / n0;
            let bi = gi - g * n0;
            let bj = gj - g * n0;
            let dest = g * group_size + (bi % side) * side + (bj % side);
            elements.push((gi, gj, local[(li, lj)], dest));
        }
    }
    let received = scatter_elements(comm, n, elements, cfg.log_latency)?;

    // Every rank joins exactly one subgroup call so communicator bookkeeping
    // stays aligned; ranks that are not active members get `Err` and skip.
    let my_rank = comm.rank();
    let my_group = my_rank / group_size;
    let my_slot = my_rank % group_size;
    let members: Vec<usize> = if my_group < nblocks && my_slot < active {
        (my_group * group_size..my_group * group_size + active).collect()
    } else {
        Vec::new()
    };
    let sub_comm = comm.subgroup(&members);

    let mut outgoing = Vec::new();
    if let Ok(sub) = &sub_comm {
        let g = my_group;
        let sub_grid = Grid2D::new(sub, side, side)?;
        let mut block = DistMatrix::zeros(&sub_grid, n0, n0);
        {
            let (sx, sy) = sub_grid.my_coords();
            for &(gi, gj, v) in &received {
                let bi = gi - g * n0;
                let bj = gj - g * n0;
                debug_assert_eq!(bi % side, sx);
                debug_assert_eq!(bj % side, sy);
                block.local_mut()[(bi / side, bj / side)] = v;
            }
        }
        let inv = if side == 1 {
            let flops = dense::tri_invert_in_place(
                Triangle::Lower,
                &mut block.local_mut().as_view_mut(),
                INV_BASE,
            )?;
            comm.charge_flops(flops.get());
            block
        } else {
            tri_inv(
                &block,
                &TriInvConfig {
                    base_size: cfg.inv_base,
                    log_latency: cfg.log_latency,
                },
            )?
        };
        // Send the inverted block back to the cyclic owners on the face grid.
        let inv_local = inv.local();
        for li in 0..inv_local.rows() {
            let bi = inv.global_row(li);
            for lj in 0..inv_local.cols() {
                let bj = inv.global_col(lj);
                if bj > bi {
                    continue;
                }
                let gi = g * n0 + bi;
                let gj = g * n0 + bj;
                outgoing.push((gi, gj, inv_local[(li, lj)], grid.rank_of(gi % q, gj % q)));
            }
        }
    }
    let incoming = scatter_elements(comm, n, outgoing, cfg.log_latency)?;
    place_into(&mut l_tilde, &incoming, q);
    Ok(l_tilde)
}

/// Overwrite the local entries of `mat` (cyclic over a `side × side` grid)
/// with the received `(global row, global col, value)` triples.
fn place_into(mat: &mut DistMatrix, triples: &[(usize, usize, f64)], side: usize) {
    let (x, y) = mat.grid().my_coords();
    for &(gi, gj, v) in triples {
        debug_assert_eq!(gi % side, x);
        debug_assert_eq!(gj % side, y);
        mat.local_mut()[(gi / side, gj / side)] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(
        q: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> (Vec<T>, simnet::CostReport) {
        let out = Machine::new(q * q, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                f(&grid)
            })
            .unwrap();
        (out.results, out.report)
    }

    /// Check that L̃ has inverted diagonal blocks and untouched panels.
    fn check(q: usize, n: usize, n0: usize) {
        let (results, _) = on_grid(q, move |grid| {
            let l_global = gen::well_conditioned_lower(n, 17);
            let l = DistMatrix::from_global(grid, &l_global);
            let lt = diagonal_inverter(
                &l,
                &DiagInvConfig {
                    n0,
                    inv_base: 8,
                    log_latency: true,
                },
            )
            .unwrap();
            let got = lt.to_global();
            // Expected: diagonal blocks inverted, off-diagonal unchanged.
            let mut max_err: f64 = 0.0;
            for g in 0..n / n0 {
                let blk = l_global.block(g * n0, g * n0, n0, n0);
                let (inv, _) = dense::tri_invert(Triangle::Lower, &blk).unwrap();
                let got_blk = got.block(g * n0, g * n0, n0, n0);
                max_err = max_err.max(inv.max_abs_diff(&got_blk).unwrap());
            }
            // Off-diagonal panels must be bit-identical to L.
            let mut panels_equal = true;
            for i in 0..n {
                for j in 0..=i {
                    if i / n0 != j / n0 && got[(i, j)] != l_global[(i, j)] {
                        panels_equal = false;
                    }
                }
            }
            (max_err, panels_equal, got.is_lower_triangular())
        });
        for (err, panels_equal, lower) in results {
            assert!(
                err < 1e-8,
                "q={q} n={n} n0={n0}: diagonal block error {err}"
            );
            assert!(panels_equal, "off-diagonal panels must be untouched");
            assert!(lower, "L̃ must stay lower triangular");
        }
    }

    #[test]
    fn single_processor_all_block_sizes() {
        check(1, 32, 8);
        check(1, 32, 32);
        check(1, 32, 4);
    }

    #[test]
    fn more_blocks_than_processors() {
        // 2x2 grid (4 procs), 8 blocks → round-robin local inversions.
        check(2, 64, 8);
    }

    #[test]
    fn fewer_blocks_than_processors() {
        // 4x4 grid (16 procs), 2 blocks → each block inverted on a sub-grid.
        check(4, 64, 32);
        // One block = the full matrix (n0 = n): equivalent to tri_inv.
        check(4, 64, 64);
    }

    #[test]
    fn equal_blocks_and_processors() {
        check(2, 32, 8); // 4 blocks on 4 processors
    }

    #[test]
    fn block_size_one_degenerates_to_reciprocals() {
        let (results, _) = on_grid(2, |grid| {
            let l_global = gen::well_conditioned_lower(8, 3);
            let l = DistMatrix::from_global(grid, &l_global);
            let lt = diagonal_inverter(
                &l,
                &DiagInvConfig {
                    n0: 1,
                    inv_base: 8,
                    log_latency: true,
                },
            )
            .unwrap();
            let got = lt.to_global();
            (0..8)
                .map(|i| (got[(i, i)] - 1.0 / l_global[(i, i)]).abs())
                .fold(0.0, f64::max)
        });
        assert!(results.into_iter().all(|e| e < 1e-12));
    }

    #[test]
    fn invalid_block_sizes_rejected() {
        let (results, _) = on_grid(2, |grid| {
            let l = DistMatrix::zeros(grid, 16, 16);
            let bad_zero = diagonal_inverter(
                &l,
                &DiagInvConfig {
                    n0: 0,
                    inv_base: 8,
                    log_latency: true,
                },
            )
            .is_err();
            let bad_divide = diagonal_inverter(
                &l,
                &DiagInvConfig {
                    n0: 5,
                    inv_base: 8,
                    log_latency: true,
                },
            )
            .is_err();
            let rect = DistMatrix::zeros(grid, 16, 8);
            let bad_rect = diagonal_inverter(
                &rect,
                &DiagInvConfig {
                    n0: 4,
                    inv_base: 8,
                    log_latency: true,
                },
            )
            .is_err();
            bad_zero && bad_divide && bad_rect
        });
        assert!(results.into_iter().all(|v| v));
    }
}
