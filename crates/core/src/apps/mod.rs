//! Example applications built on the distributed TRSM and matrix
//! multiplication primitives.
//!
//! The introduction of the paper motivates TRSM through its two dominant
//! uses: computing triangular factorizations (Cholesky, LU, QR) and solving
//! linear systems once such a factorization exists.  These modules implement
//! both uses end-to-end on the simulated machine:
//!
//! * [`cholesky`] — a distributed recursive Cholesky factorization whose
//!   panel solves are TRSMs, plus an SPD linear-system solver built on it;
//! * [`lu`] — a distributed recursive LU factorization (without pivoting,
//!   for diagonally dominant systems) plus a general linear-system solver.

pub mod cholesky;
pub mod lu;

pub use cholesky::{cholesky_factor, cholesky_solve};
pub use lu::{lu_factor, lu_solve};
