//! Distributed LU factorization (without pivoting) and linear-system solver.
//!
//! The recursion mirrors the Cholesky application but produces two factors;
//! both panel steps are TRSMs:
//!
//! ```text
//! A = [ A11 A12 ]     (L11, U11) = lu(A11)
//!     [ A21 A22 ]     U12 = L11⁻¹·A12              (a TRSM)
//!                     L21 = A21·U11⁻¹               (a TRSM, transposed)
//!                     (L22, U22) = lu(A22 − L21·U12)
//! ```
//!
//! Pivoting is omitted (as in most communication-cost analyses); the solver
//! is intended for diagonally dominant or otherwise well-conditioned systems,
//! which is what the examples generate.

use crate::apps::cholesky::FactorConfig;
use crate::error::config_error;
use crate::mm3d::mm3d_auto;
use crate::solve::SolveRequest;
use crate::Result;
use pgrid::redist::transpose;
use pgrid::DistMatrix;

/// Distributed LU factorization `A = L·U` (no pivoting) on a square grid.
/// Returns `(L, U)` with `L` unit-lower-triangular and `U` upper-triangular,
/// both in the same distribution as `A`.
pub fn lu_factor(a: &DistMatrix, cfg: &FactorConfig) -> Result<(DistMatrix, DistMatrix)> {
    let grid = a.grid();
    if grid.rows() != grid.cols() {
        return Err(config_error(
            "lu_factor",
            format!("grid must be square, got {}x{}", grid.rows(), grid.cols()),
        ));
    }
    if a.rows() != a.cols() {
        return Err(config_error(
            "lu_factor",
            format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
        ));
    }
    lu_inner(a, cfg)
}

fn lu_inner(a: &DistMatrix, cfg: &FactorConfig) -> Result<(DistMatrix, DistMatrix)> {
    let grid = a.grid();
    let q = grid.rows();
    let n = a.rows();

    let splittable = q > 1 && n.is_multiple_of(2 * q) && n > cfg.base_size;
    if !splittable {
        let full = a.try_to_global()?;
        let (l, u, flops) = dense::lu(&full)?;
        grid.comm().charge_flops(flops.get());
        return Ok((
            DistMatrix::from_global(grid, &l),
            DistMatrix::from_global(grid, &u),
        ));
    }

    let h = n / 2;
    let a11 = a.subview(0, h, 0, h)?;
    let a12 = a.subview(0, h, h, h)?;
    let a21 = a.subview(h, h, 0, h)?;
    let a22 = a.subview(h, h, h, h)?;

    let (l11, u11) = lu_inner(&a11, cfg)?;

    // U12 = L11⁻¹·A12.
    let req = SolveRequest::lower().algorithm(cfg.trsm);
    let u12 = req.solve_distributed(&l11, &a12)?.x;

    // L21 = A21·U11⁻¹, computed as L21ᵀ = U11⁻ᵀ·A21ᵀ (U11ᵀ is lower).
    let a21t = transpose(&a21, true)?;
    // U11ᵀ is lower triangular: solve it via the transposed request on the
    // stored U11 (no second materialized transpose).
    let l21t = SolveRequest::upper()
        .transposed()
        .algorithm(cfg.trsm)
        .solve_distributed(&u11, &a21t)?
        .x;
    let l21 = transpose(&l21t, true)?;

    // Trailing update A22 ← A22 − L21·U12.
    let update = mm3d_auto(&l21, &u12)?;
    let mut a22_new = a22;
    a22_new.sub_assign(&update)?;

    let (l22, u22) = lu_inner(&a22_new, cfg)?;

    let mut l = DistMatrix::zeros(grid, n, n);
    l.set_subview(0, 0, &l11)?;
    l.set_subview(h, 0, &l21)?;
    l.set_subview(h, h, &l22)?;
    let mut u = DistMatrix::zeros(grid, n, n);
    u.set_subview(0, 0, &u11)?;
    u.set_subview(0, h, &u12)?;
    u.set_subview(h, h, &u22)?;
    Ok((l, u))
}

/// Solve `A·X = B` by LU factorization followed by forward and backward
/// triangular solves.
pub fn lu_solve(a: &DistMatrix, b: &DistMatrix, cfg: &FactorConfig) -> Result<DistMatrix> {
    let (l, u) = lu_factor(a, cfg)?;
    let y = SolveRequest::lower()
        .algorithm(cfg.trsm)
        .solve_distributed(&l, b)?
        .x;
    Ok(SolveRequest::upper()
        .algorithm(cfg.trsm)
        .solve_distributed(&u, &y)?
        .x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Algorithm;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(q: usize, f: impl Fn(&Grid2D) -> T + Send + Sync) -> Vec<T> {
        Machine::new(q * q, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                f(&grid)
            })
            .unwrap()
            .results
    }

    #[test]
    fn factorization_reconstructs_the_matrix() {
        for q in [1usize, 2] {
            let results = on_grid(q, |grid| {
                let n = 64;
                let a_global = gen::diagonally_dominant(n, 11);
                let a = DistMatrix::from_global(grid, &a_global);
                let (l, u) = lu_factor(
                    &a,
                    &FactorConfig {
                        base_size: 16,
                        trsm: Algorithm::Recursive { base_size: 8 },
                    },
                )
                .unwrap();
                let l_global = l.to_global();
                let u_global = u.to_global();
                let rec = dense::matmul(&l_global, &u_global);
                (
                    dense::norms::rel_diff(&rec, &a_global),
                    l_global.is_lower_triangular(),
                    u_global.is_upper_triangular(),
                )
            });
            for (d, lower, upper) in results {
                assert!(d < 1e-8, "q={q}: reconstruction error {d}");
                assert!(lower && upper);
            }
        }
    }

    #[test]
    fn solver_matches_direct_solution() {
        let results = on_grid(2, |grid| {
            let n = 32;
            let k = 8;
            let a_global = gen::diagonally_dominant(n, 13);
            let x_true = gen::rhs(n, k, 14);
            let b_global = dense::matmul(&a_global, &x_true);
            let a = DistMatrix::from_global(grid, &a_global);
            let b = DistMatrix::from_global(grid, &b_global);
            let x = lu_solve(
                &a,
                &b,
                &FactorConfig {
                    base_size: 8,
                    trsm: Algorithm::Recursive { base_size: 8 },
                },
            )
            .unwrap();
            dense::norms::rel_diff(&x.to_global(), &x_true)
        });
        for d in results {
            assert!(d < 1e-7, "solution error {d}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let results = on_grid(2, |grid| {
            let rect = DistMatrix::zeros(grid, 8, 6);
            lu_factor(&rect, &FactorConfig::default()).is_err()
        });
        assert!(results.into_iter().all(|v| v));
    }
}
