//! Distributed Cholesky factorization and SPD linear-system solver.
//!
//! The factorization is the recursive blocked scheme whose panel step *is* a
//! TRSM — the workload the paper's introduction motivates:
//!
//! ```text
//! A = [ A11  A21ᵀ ]      L11 = chol(A11)
//!     [ A21  A22  ]      L21 = A21·L11⁻ᵀ            (a TRSM)
//!                        L22 = chol(A22 − L21·L21ᵀ)  (a GEMM + recursion)
//! ```
//!
//! [`cholesky_solve`] then solves `A·X = B` by a forward TRSM with `L` and a
//! backward TRSM with `Lᵀ`, all on the simulated machine.

use crate::api::Algorithm;
use crate::error::config_error;
use crate::mm3d::mm3d_auto;
use crate::solve::SolveRequest;
use crate::Result;
use pgrid::redist::transpose;
use pgrid::DistMatrix;

/// Configuration of the distributed factorizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FactorConfig {
    /// Dimension at or below which the matrix is gathered and factorized
    /// redundantly by every processor.
    pub base_size: usize,
    /// Algorithm used for the triangular panel solves.
    pub trsm: Algorithm,
}

impl Default for FactorConfig {
    fn default() -> Self {
        FactorConfig {
            base_size: 64,
            trsm: Algorithm::Recursive { base_size: 32 },
        }
    }
}

/// Distributed Cholesky factorization `A = L·Lᵀ` of a symmetric
/// positive-definite matrix on a square processor grid.  Returns the
/// lower-triangular factor in the same distribution.
pub fn cholesky_factor(a: &DistMatrix, cfg: &FactorConfig) -> Result<DistMatrix> {
    let grid = a.grid();
    if grid.rows() != grid.cols() {
        return Err(config_error(
            "cholesky_factor",
            format!("grid must be square, got {}x{}", grid.rows(), grid.cols()),
        ));
    }
    if a.rows() != a.cols() {
        return Err(config_error(
            "cholesky_factor",
            format!("matrix must be square, got {}x{}", a.rows(), a.cols()),
        ));
    }
    cholesky_inner(a, cfg)
}

fn cholesky_inner(a: &DistMatrix, cfg: &FactorConfig) -> Result<DistMatrix> {
    let grid = a.grid();
    let q = grid.rows();
    let n = a.rows();

    let splittable = q > 1 && n.is_multiple_of(2 * q) && n > cfg.base_size;
    if !splittable {
        let full = a.try_to_global()?;
        let (l, flops) = dense::cholesky(&full)?;
        grid.comm().charge_flops(flops.get());
        return Ok(DistMatrix::from_global(grid, &l));
    }

    let h = n / 2;
    let a11 = a.subview(0, h, 0, h)?;
    let a21 = a.subview(h, h, 0, h)?;
    let a22 = a.subview(h, h, h, h)?;

    // L11 = chol(A11).
    let l11 = cholesky_inner(&a11, cfg)?;

    // L21 = A21·L11⁻ᵀ, computed as L21ᵀ = L11⁻¹·A21ᵀ (a TRSM).
    let a21t = transpose(&a21, true)?;
    let l21t = SolveRequest::lower()
        .algorithm(cfg.trsm)
        .solve_distributed(&l11, &a21t)?
        .x;
    let l21 = transpose(&l21t, true)?;

    // Trailing update A22 ← A22 − L21·L21ᵀ.
    let update = mm3d_auto(&l21, &l21t)?;
    let mut a22_new = a22;
    a22_new.sub_assign(&update)?;

    // L22 = chol(updated A22).
    let l22 = cholesky_inner(&a22_new, cfg)?;

    let mut l = DistMatrix::zeros(grid, n, n);
    l.set_subview(0, 0, &l11)?;
    l.set_subview(h, 0, &l21)?;
    l.set_subview(h, h, &l22)?;
    Ok(l)
}

/// Solve `A·X = B` for a symmetric positive-definite `A` by Cholesky
/// factorization followed by forward and backward triangular solves.
pub fn cholesky_solve(a: &DistMatrix, b: &DistMatrix, cfg: &FactorConfig) -> Result<DistMatrix> {
    let l = cholesky_factor(a, cfg)?;
    let req = SolveRequest::lower().algorithm(cfg.trsm);
    let y = req.solve_distributed(&l, b)?.x;
    // Backward solve Lᵀ·X = Y straight off the stored factor: the staged
    // API's transposed request performs the one transpose redistribution
    // internally.
    Ok(req.transposed().solve_distributed(&l, &y)?.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(q: usize, f: impl Fn(&Grid2D) -> T + Send + Sync) -> Vec<T> {
        Machine::new(q * q, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                f(&grid)
            })
            .unwrap()
            .results
    }

    #[test]
    fn factorization_reconstructs_the_matrix() {
        for q in [1usize, 2] {
            let results = on_grid(q, |grid| {
                let n = 64;
                let a_global = gen::spd(n, 7);
                let a = DistMatrix::from_global(grid, &a_global);
                let l = cholesky_factor(
                    &a,
                    &FactorConfig {
                        base_size: 16,
                        trsm: Algorithm::Recursive { base_size: 8 },
                    },
                )
                .unwrap();
                let l_global = l.to_global();
                let rec = dense::matmul(&l_global, &l_global.transpose());
                (
                    dense::norms::rel_diff(&rec, &a_global),
                    l_global.is_lower_triangular(),
                )
            });
            for (d, lower) in results {
                assert!(d < 1e-8, "q={q}: reconstruction error {d}");
                assert!(lower);
            }
        }
    }

    #[test]
    fn solver_matches_direct_solution() {
        let results = on_grid(2, |grid| {
            let n = 32;
            let k = 4;
            let a_global = gen::spd(n, 3);
            let x_true = gen::rhs(n, k, 5);
            let b_global = dense::matmul(&a_global, &x_true);
            let a = DistMatrix::from_global(grid, &a_global);
            let b = DistMatrix::from_global(grid, &b_global);
            let x = cholesky_solve(
                &a,
                &b,
                &FactorConfig {
                    base_size: 8,
                    trsm: Algorithm::Recursive { base_size: 8 },
                },
            )
            .unwrap();
            dense::norms::rel_diff(&x.to_global(), &x_true)
        });
        for d in results {
            assert!(d < 1e-7, "solution error {d}");
        }
    }

    #[test]
    fn iterative_trsm_inside_cholesky() {
        // The panel solves can also use the paper's iterative algorithm.
        let results = on_grid(2, |grid| {
            let n = 64;
            let a_global = gen::spd(n, 9);
            let a = DistMatrix::from_global(grid, &a_global);
            let l = cholesky_factor(
                &a,
                &FactorConfig {
                    base_size: 16,
                    trsm: Algorithm::Auto,
                },
            )
            .unwrap();
            let l_global = l.to_global();
            dense::norms::rel_diff(&dense::matmul(&l_global, &l_global.transpose()), &a_global)
        });
        for d in results {
            assert!(d < 1e-8);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let results = on_grid(2, |grid| {
            let rect = DistMatrix::zeros(grid, 8, 6);
            cholesky_factor(&rect, &FactorConfig::default()).is_err()
        });
        assert!(results.into_iter().all(|v| v));
    }
}
