//! Recursive TRSM (Section IV of the paper) — the "standard" baseline.
//!
//! The algorithm follows Elmroth et al.'s recursive blocking:
//!
//! * when the processor grid is wider than it is tall (`pc > pr`, the case of
//!   many right-hand sides), the right-hand side is split into `pc/pr`
//!   independent column groups, the triangular matrix is **replicated** onto
//!   each square `pr × pr` sub-grid (an allgather), and the groups proceed
//!   independently;
//! * on a square grid the triangular matrix is split in half,
//!   `X₁ = L₁₁⁻¹·B₁` is solved recursively, the trailing right-hand side is
//!   updated with a 3D matrix multiplication (`B₂ ← B₂ − L₂₁·X₁`, Section III)
//!   and `X₂` is solved recursively;
//! * at the base case the triangular matrix is gathered everywhere and each
//!   processor solves a subset of complete right-hand-side columns locally.
//!
//! The recursion over `L` is what gives this algorithm its `Θ(poly(p))`
//! synchronization cost: every level performs at least one full collective,
//! and there are `n / n0` sequentialised levels on the critical path.

use crate::error::config_error;
use crate::mm3d::{mm3d, MmConfig};
use crate::planner::choose_mm_p1;
use crate::Result;
use dense::{Diag, Matrix, Triangle};
use pgrid::distmat::cyclic_local_count;
use pgrid::redist::{remap_elements, scatter_elements};
use pgrid::{DistMatrix, Grid2D};
use simnet::coll;

/// Configuration of the recursive TRSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecTrsmConfig {
    /// Matrix dimension at or below which the base case (gather `L`, solve
    /// complete columns locally) is used.
    pub base_size: usize,
    /// Route redistributions through the Bruck all-to-all (`log p` latency).
    pub log_latency: bool,
}

impl Default for RecTrsmConfig {
    fn default() -> Self {
        RecTrsmConfig {
            base_size: 64,
            log_latency: true,
        }
    }
}

/// Solve `L·X = B` with the recursive algorithm.  `L` (`n×n`, lower
/// triangular) and `B` (`n×k`) must be distributed cyclically over the same
/// `pr × pc` grid with `pr ≤ pc` and `pr | pc`.
pub fn rec_trsm(l: &DistMatrix, b: &DistMatrix, cfg: &RecTrsmConfig) -> Result<DistMatrix> {
    let grid = l.grid();
    let (pr, pc) = (grid.rows(), grid.cols());
    let n = l.rows();
    let k = b.cols();

    if l.cols() != n {
        return Err(config_error(
            "rec_trsm",
            format!("L must be square, got {}x{}", n, l.cols()),
        ));
    }
    if b.rows() != n {
        return Err(config_error(
            "rec_trsm",
            format!(
                "dimension mismatch: L is {}x{}, B is {}x{}",
                n,
                n,
                b.rows(),
                k
            ),
        ));
    }
    if b.grid().rows() != pr || b.grid().cols() != pc {
        return Err(config_error(
            "rec_trsm",
            "L and B must be distributed over the same grid",
        ));
    }
    if pr > pc || pc % pr != 0 {
        return Err(config_error(
            "rec_trsm",
            format!("grid must satisfy pr ≤ pc and pr | pc, got {pr}x{pc}"),
        ));
    }
    if pr * pc > 1 && (!n.is_multiple_of(pr) || !n.is_multiple_of(pc) || !k.is_multiple_of(pc)) {
        return Err(config_error(
            "rec_trsm",
            format!("n = {n} must be divisible by pr = {pr} and pc = {pc}, and k = {k} by pc"),
        ));
    }
    rec_trsm_inner(l, b, cfg)
}

fn rec_trsm_inner(l: &DistMatrix, b: &DistMatrix, cfg: &RecTrsmConfig) -> Result<DistMatrix> {
    let grid = l.grid();
    let (pr, pc) = (grid.rows(), grid.cols());
    let n = l.rows();
    let k = b.cols();
    let p = pr * pc;

    // --- Column split onto square sub-grids (pc > pr). -------------------
    if pc > pr {
        let q = pc / pr;
        let (x, y) = grid.my_coords();
        let z = y / pr; // which square sub-grid this rank belongs to

        // Replicate L: allgather the pieces of L(·, cols ≡ y (mod pr)) over
        // the q ranks that share this rank's row and column residue.
        let lr = cyclic_local_count(n, pr, x);
        let lc_rep = cyclic_local_count(n, pr, y % pr);
        let l_rep = if q == 1 {
            l.local().clone()
        } else {
            let group = grid.subgroup_where(|r, c| r == x && c % pr == y % pr)?;
            let pieces = coll::allgatherv(&group, l.local().as_slice())?;
            let mut rep = Matrix::zeros(lr, lc_rep);
            for (m, piece) in pieces.into_iter().enumerate() {
                // Member m sits at grid column (y mod pr) + m·pr; its columns
                // interleave with stride q in the replicated piece.
                let src_cols = cyclic_local_count(n, pc, y % pr + m * pr);
                if src_cols == 0 || lr == 0 {
                    continue;
                }
                let block = Matrix::from_vec(lr, src_cols, piece)?;
                rep.set_strided_block(0, 1, m, q, &block);
            }
            rep
        };

        // The square sub-grid of this rank (columns y with y/pr == z).
        let sub_members: Vec<usize> = (0..p)
            .filter(|&r| {
                let (_, c) = grid.coords_of(r);
                c / pr == z
            })
            .collect();
        let sub_comm = grid.comm().subgroup(&sub_members)?;
        let sub_grid = Grid2D::new(&sub_comm, pr, pr)?;

        let l_sub = DistMatrix::from_local(&sub_grid, n, n, l_rep)?;
        // B's columns owned by this sub-grid form a k/q-column problem whose
        // local pieces coincide with the existing ones (see DESIGN.md).
        let b_sub = DistMatrix::from_local(&sub_grid, n, k / q, b.local().clone())?;
        let x_sub = rec_trsm_inner(&l_sub, &b_sub, cfg)?;
        return DistMatrix::from_local(grid, n, k, x_sub.local().clone()).map_err(Into::into);
    }

    // --- Base case. -------------------------------------------------------
    let splittable = p > 1 && n.is_multiple_of(2 * pr) && n / 2 >= pr && n > cfg.base_size;
    if !splittable {
        let l_full = l.try_to_global()?;
        // Give every rank complete columns: column c goes to rank c mod p.
        let triples = remap_elements(b, |_, c| c % p, cfg.log_latency)?;
        let my_rank = grid.comm().rank();
        let my_cols = cyclic_local_count(k, p, my_rank);
        let mut b_cols = Matrix::zeros(n, my_cols);
        for (gi, gj, v) in triples {
            debug_assert_eq!(gj % p, my_rank);
            b_cols[(gi, gj / p)] = v;
        }
        if my_cols > 0 {
            // Solve in place: the gathered columns are overwritten with X.
            dense::trsm_in_place(
                dense::Side::Left,
                Triangle::Lower,
                Diag::NonUnit,
                &l_full,
                &mut b_cols,
            )?;
            grid.comm()
                .charge_flops(dense::flops::trsm_flops(n, my_cols).get());
        }
        let x_cols = b_cols;
        // Scatter the solution back to the cyclic layout.
        let mut elements = Vec::with_capacity(x_cols.len());
        for lj in 0..my_cols {
            let gj = lj * p + my_rank;
            for gi in 0..n {
                elements.push((gi, gj, x_cols[(gi, lj)], grid.rank_of(gi % pr, gj % pc)));
            }
        }
        let incoming = scatter_elements(grid.comm(), k, elements, cfg.log_latency)?;
        let mut x = DistMatrix::zeros(grid, n, k);
        for (gi, gj, v) in incoming {
            x.local_mut()[(gi / pr, gj / pc)] = v;
        }
        return Ok(x);
    }

    // --- Recursive split of L on a square grid. ---------------------------
    let h = n / 2;
    let l11 = l.subview(0, h, 0, h)?;
    let l21 = l.subview(h, h, 0, h)?;
    let l22 = l.subview(h, h, h, h)?;
    let b1 = b.subview(0, h, 0, k)?;
    let b2 = b.subview(h, h, 0, k)?;

    let x1 = rec_trsm_inner(&l11, &b1, cfg)?;

    let mm_cfg = MmConfig {
        p1: choose_mm_p1(h, k, pr),
        log_latency: cfg.log_latency,
    };
    let update = mm3d(&l21, &x1, &mm_cfg)?;
    let mut b2_new = b2;
    b2_new.sub_assign(&update)?;

    let x2 = rec_trsm_inner(&l22, &b2_new, cfg)?;

    let mut x = DistMatrix::zeros(grid, n, k);
    x.set_subview(0, 0, &x1)?;
    x.set_subview(h, 0, &x2)?;
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(
        pr: usize,
        pc: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> (Vec<T>, simnet::CostReport) {
        let out = Machine::new(pr * pc, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, pr, pc).unwrap();
                f(&grid)
            })
            .unwrap();
        (out.results, out.report)
    }

    fn check_solve(pr: usize, pc: usize, n: usize, k: usize, base: usize) {
        let (results, _) = on_grid(pr, pc, move |grid| {
            let l_global = gen::well_conditioned_lower(n, 9);
            let x_true = gen::rhs(n, k, 10);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(grid, &l_global);
            let b = DistMatrix::from_global(grid, &b_global);
            let x = rec_trsm(
                &l,
                &b,
                &RecTrsmConfig {
                    base_size: base,
                    log_latency: true,
                },
            )
            .unwrap();
            dense::norms::rel_diff(&x.to_global(), &x_true)
        });
        for (rank, d) in results.into_iter().enumerate() {
            assert!(
                d < 1e-8,
                "pr={pr} pc={pc} n={n} k={k} rank={rank}: diff {d}"
            );
        }
    }

    #[test]
    fn single_processor_base_case() {
        check_solve(1, 1, 32, 8, 64);
    }

    #[test]
    fn square_grid_recursion() {
        check_solve(2, 2, 32, 8, 8);
        check_solve(2, 2, 64, 16, 16);
    }

    #[test]
    fn four_by_four_grid() {
        check_solve(4, 4, 64, 16, 16);
    }

    #[test]
    fn rectangular_grid_splits_columns() {
        // pc > pr: the right-hand side is split over two / four square grids.
        check_solve(2, 4, 32, 32, 8);
        check_solve(1, 4, 16, 32, 8);
        check_solve(2, 8, 32, 64, 8);
    }

    #[test]
    fn base_case_only_when_base_size_large() {
        check_solve(2, 2, 32, 8, 1024);
    }

    #[test]
    fn deep_recursion_with_small_base() {
        check_solve(2, 2, 128, 8, 8);
    }

    #[test]
    fn wide_right_hand_side() {
        check_solve(2, 2, 32, 128, 8);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (results, _) = on_grid(2, 2, |grid| {
            let l = DistMatrix::zeros(grid, 16, 16);
            let b = DistMatrix::zeros(grid, 16, 8);
            let rect_l = DistMatrix::zeros(grid, 16, 12);
            let bad_l = rec_trsm(&rect_l, &b, &RecTrsmConfig::default()).is_err();
            let wrong_rows = {
                let b_bad = DistMatrix::zeros(grid, 12, 8);
                rec_trsm(&l, &b_bad, &RecTrsmConfig::default()).is_err()
            };
            let bad_divisibility = {
                let l_odd = DistMatrix::zeros(grid, 18, 18);
                let b_odd = DistMatrix::zeros(grid, 18, 8);
                rec_trsm(&l_odd, &b_odd, &RecTrsmConfig::default()).is_err()
            };
            bad_l && wrong_rows && bad_divisibility
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn rejects_tall_grids() {
        let out = Machine::new(8, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 4, 2).unwrap();
                let l = DistMatrix::zeros(&grid, 16, 16);
                let b = DistMatrix::zeros(&grid, 16, 8);
                rec_trsm(&l, &b, &RecTrsmConfig::default()).is_err()
            })
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }

    #[test]
    fn latency_grows_with_recursion_depth() {
        // The recursive algorithm's message count grows with n/base_size —
        // the behaviour the iterative algorithm is designed to avoid.
        let run = |n: usize, base: usize| {
            let (_, report) = on_grid(2, 2, move |grid| {
                let l_global = gen::well_conditioned_lower(n, 3);
                let b_global = gen::rhs(n, 8, 4);
                let l = DistMatrix::from_global(grid, &l_global);
                let b = DistMatrix::from_global(grid, &b_global);
                rec_trsm(
                    &l,
                    &b,
                    &RecTrsmConfig {
                        base_size: base,
                        log_latency: true,
                    },
                )
                .unwrap();
            });
            report.max_messages()
        };
        let shallow = run(128, 64);
        let deep = run(128, 8);
        assert!(
            deep > shallow,
            "deeper recursion must cost more messages ({deep} vs {shallow})"
        );
    }
}
