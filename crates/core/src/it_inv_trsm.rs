//! Iterative inversion-based TRSM (`It-Inv-TRSM`, Sections VI–VII) — the
//! paper's main contribution.
//!
//! The algorithm runs on a `p1 × p1 × p2` processor grid.  The triangular
//! matrix lives on the square face (coordinates `(x, y, z = 0)`) in a cyclic
//! layout; the right-hand side is split into `p2` column slabs (one per
//! layer `z`) with its rows distributed cyclically over `x` and replicated
//! over `y`.  After the diagonal blocks `L(S_i, S_i)` are inverted
//! ([`crate::diag_inv`]), each of the `n/n0` iterations performs only
//! *multiplications* and *reductions* — no latency-bound small triangular
//! solves:
//!
//! 1. broadcast the inverted diagonal block piece along `z`,
//! 2. multiply it with the current right-hand-side block and **allreduce
//!    along `x`** to obtain `X(S_i)`,
//! 3. broadcast the trailing panel `L(T_{i+1}, S_i)` along `z`,
//! 4. multiply it with `X(S_i)` and accumulate into a **local** update
//!    buffer,
//! 5. **allreduce along `y`** only the next block row `S_{i+1}` of the update
//!    buffer (lazy reduction) and subtract it from the right-hand side.
//!
//! The measured per-phase costs (returned in [`PhaseBreakdown`]) reproduce
//! the `W_Inv`, `W_Solve` and `W_Upd` expressions of Section VII, and the
//! latency is `O((n/n0)·log p + log² p)` instead of the recursive
//! algorithm's polynomial-in-`p` synchronisation cost.

use crate::diag_inv::{diagonal_inverter, DiagInvConfig};
use crate::error::{config_error, internal_error};
use crate::Result;
use dense::Matrix;
use pgrid::redist::scatter_elements;
use pgrid::{DistMatrix, Grid2D, Grid3D};
use simnet::{coll, Communicator, CostCounters};

/// Configuration of the iterative inversion-based TRSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItInvConfig {
    /// Square-face dimension of the `p1 × p1 × p2` processor grid.
    pub p1: usize,
    /// Depth of the processor grid (number of right-hand-side layers).
    pub p2: usize,
    /// Diagonal block size that is inverted (`n0`).
    pub n0: usize,
    /// Base-case size of the distributed triangular inversion.
    pub inv_base: usize,
}

impl ItInvConfig {
    /// Use the Bruck all-to-all for redistributions (always true here; kept
    /// as a method so callers can read the intent).
    fn log_latency(&self) -> bool {
        true
    }
}

/// Cost counters of this rank, split by algorithm phase.
///
/// Collect the breakdowns of all ranks (the machine returns one result per
/// rank) and take per-field maxima to obtain the critical-path phase costs
/// that experiment E5 compares against Section VII of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Initial redistribution of `L` and `B` onto the 3D grid.
    pub setup: CostCounters,
    /// Block-diagonal inversion (Section VII-A).
    pub inversion: CostCounters,
    /// Solve steps: diagonal-block broadcasts, multiplications, X reductions
    /// (Section VII-B).
    pub solve: CostCounters,
    /// Update steps: panel broadcasts, multiplications, lazy reductions
    /// (Section VII-C).
    pub update: CostCounters,
    /// Final redistribution of `X` back to the caller's layout.
    pub finalize: CostCounters,
}

impl PhaseBreakdown {
    /// Sum of all phases (this rank's total contribution).
    pub fn total(&self) -> CostCounters {
        self.setup
            .merge(&self.inversion)
            .merge(&self.solve)
            .merge(&self.update)
            .merge(&self.finalize)
    }
}

/// Solve `L·X = B` with the iterative inversion-based algorithm.
///
/// `L` (`n×n` lower triangular) and `B` (`n×k`) must be distributed over the
/// same 2D grid, whose communicator must have exactly `p1²·p2` ranks.  The
/// solution is returned in the same layout as `B`, together with this rank's
/// per-phase cost counters.
pub fn it_inv_trsm(
    l: &DistMatrix,
    b: &DistMatrix,
    cfg: &ItInvConfig,
) -> Result<(DistMatrix, PhaseBreakdown)> {
    let caller_grid = l.grid();
    let comm = caller_grid.comm();
    let p = comm.size();
    let n = l.rows();
    let k = b.cols();
    let (p1, p2, n0) = (cfg.p1, cfg.p2, cfg.n0);

    if l.cols() != n {
        return Err(config_error(
            "it_inv_trsm",
            format!("L must be square, got {}x{}", n, l.cols()),
        ));
    }
    if b.rows() != n {
        return Err(config_error(
            "it_inv_trsm",
            format!("dimension mismatch: L is {n}x{n}, B is {}x{k}", b.rows()),
        ));
    }
    if b.grid().rows() != caller_grid.rows() || b.grid().cols() != caller_grid.cols() {
        return Err(config_error(
            "it_inv_trsm",
            "L and B must be distributed over the same grid",
        ));
    }
    if p1 == 0 || p2 == 0 || p1 * p1 * p2 != p {
        return Err(config_error(
            "it_inv_trsm",
            format!(
                "p1²·p2 = {} must equal the communicator size {p}",
                p1 * p1 * p2
            ),
        ));
    }
    if n0 == 0 || !n.is_multiple_of(n0) || n0 % p1 != 0 || !n.is_multiple_of(p1) {
        return Err(config_error(
            "it_inv_trsm",
            format!("need n0 | n, p1 | n0 and p1 | n (n = {n}, n0 = {n0}, p1 = {p1})"),
        ));
    }
    if !k.is_multiple_of(p2) {
        return Err(config_error(
            "it_inv_trsm",
            format!("k = {k} must be divisible by p2 = {p2}"),
        ));
    }

    let mut breakdown = PhaseBreakdown::default();
    let mut last = comm.counters();
    let mut mark = |comm: &Communicator, slot: &mut CostCounters| {
        let now = comm.counters();
        let delta = now.since(&last);
        *slot = slot.accumulate(&delta);
        last = now;
    };

    // ------------------------------------------------------------------
    // Setup: build the 3D grid and move L and B into its layouts.
    // ------------------------------------------------------------------
    let grid3d = Grid3D::new(comm, p1, p1, p2)?;
    let (x, y, z) = grid3d.my_coords();
    let kw = k / p2; // right-hand-side slab width
    let nloc = n / p1; // rows of B/X owned per face row coordinate
    let nblocks = n / n0;
    let nb_loc = n0 / p1; // rows of one diagonal block per face coordinate

    // Face communicator (z = 0) and the face grid holding L.
    let face_members: Vec<usize> = (0..p).filter(|&r| grid3d.coords_of(r).2 == 0).collect();
    let face_comm = comm.subgroup(&face_members);
    let face_grid = match &face_comm {
        Ok(c) => Some(Grid2D::new(c, p1, p1)?),
        Err(_) => None,
    };

    // Route L onto the face (only the lower triangle).
    let mut l_elements = Vec::new();
    {
        let local = l.local();
        for li in 0..local.rows() {
            let gi = l.global_row(li);
            for lj in 0..local.cols() {
                let gj = l.global_col(lj);
                if gj > gi {
                    continue;
                }
                l_elements.push((gi, gj, local[(li, lj)], grid3d.rank_of(gi % p1, gj % p1, 0)));
            }
        }
    }
    let l_received = scatter_elements(comm, n, l_elements, cfg.log_latency())?;
    let l_face = face_grid.as_ref().map(|fg| {
        let mut mat = DistMatrix::zeros(fg, n, n);
        for (gi, gj, v) in l_received {
            mat.local_mut()[(gi / p1, gj / p1)] = v;
        }
        mat
    });

    // Route B to the replicated layout: rows ≡ x (mod p1), slab z, all y.
    let mut b_elements = Vec::new();
    {
        let local = b.local();
        for li in 0..local.rows() {
            let gi = b.global_row(li);
            for lj in 0..local.cols() {
                let gj = b.global_col(lj);
                let x_d = gi % p1;
                let z_d = gj / kw;
                for y_d in 0..p1 {
                    b_elements.push((gi, gj, local[(li, lj)], grid3d.rank_of(x_d, y_d, z_d)));
                }
            }
        }
    }
    let b_received = scatter_elements(comm, k, b_elements, cfg.log_latency())?;
    let mut b_rem = Matrix::zeros(nloc, kw);
    for (gi, gj, v) in b_received {
        debug_assert_eq!(gi % p1, x);
        debug_assert_eq!(gj / kw, z);
        b_rem[(gi / p1, gj - z * kw)] = v;
    }

    // Axis communicators used in every iteration.
    let x_comm = grid3d.axis_comm(0);
    let y_comm = grid3d.axis_comm(1);
    let z_comm = grid3d.axis_comm(2);

    mark(comm, &mut breakdown.setup);

    // ------------------------------------------------------------------
    // Inversion phase: invert the diagonal blocks on the face, then move
    // each inverted block to the transposed-coordinate owner so the solve
    // step's contraction index lines up (see module docs of diag_inv).
    // ------------------------------------------------------------------
    let l_tilde_face = match (&face_grid, &l_face) {
        (Some(_), Some(lf)) => Some(diagonal_inverter(
            lf,
            &DiagInvConfig {
                n0,
                inv_base: cfg.inv_base,
                log_latency: cfg.log_latency(),
            },
        )?),
        _ => None,
    };

    // diag_t[g] = L̃(S_g, S_g) restricted to rows ≡ y, cols ≡ x (mod p1),
    // held on the face and broadcast along z during the solve steps.
    let diag_t_face: Option<Vec<Matrix>> = if let (Some(fg), Some(lt)) = (&face_grid, &l_tilde_face)
    {
        let mut outgoing = Vec::new();
        let local = lt.local();
        for li in 0..local.rows() {
            let gi = lt.global_row(li);
            for lj in 0..local.cols() {
                let gj = lt.global_col(lj);
                if gj > gi || gi / n0 != gj / n0 {
                    continue;
                }
                // Destination face processor owns rows ≡ its y, cols ≡ its x.
                outgoing.push((gi, gj, local[(li, lj)], fg.rank_of(gj % p1, gi % p1)));
            }
        }
        let incoming = scatter_elements(fg.comm(), n, outgoing, cfg.log_latency())?;
        let mut per_block: Vec<Matrix> = (0..nblocks)
            .map(|_| Matrix::zeros(nb_loc, nb_loc))
            .collect();
        for (gi, gj, v) in incoming {
            let g = gi / n0;
            let bi = gi - g * n0;
            let bj = gj - g * n0;
            debug_assert_eq!(bi % p1, y);
            debug_assert_eq!(bj % p1, x);
            per_block[g][(bi / p1, bj / p1)] = v;
        }
        Some(per_block)
    } else {
        None
    };

    mark(comm, &mut breakdown.inversion);

    // ------------------------------------------------------------------
    // Main loop over diagonal blocks.
    // ------------------------------------------------------------------
    // X rows ≡ y (mod p1) of this rank's slab, filled block by block.
    let mut x_result = Matrix::zeros(nloc, kw);
    // Locally accumulated trailing updates (rows ≡ x, slab z).
    let mut b_update_acc = Matrix::zeros(nloc, kw);

    for i in 0..nblocks {
        // --- Solve step ------------------------------------------------
        // (a) broadcast the inverted diagonal piece along z.
        let diag_flat = if z == 0 {
            diag_t_face
                .as_ref()
                .ok_or_else(|| internal_error("it_inv_trsm", "face rank holds no diag blocks"))?[i]
                .as_slice()
                .to_vec()
        } else {
            Vec::new()
        };
        let diag_flat = coll::bcast(&z_comm, 0, &diag_flat, nb_loc * nb_loc)?;
        let diag_piece = Matrix::from_vec(nb_loc, nb_loc, diag_flat)?;

        // (b) multiply with the current right-hand-side block, read in place.
        let mut x_part = Matrix::zeros(nb_loc, kw);
        let flops = dense::gemm_views(
            1.0,
            diag_piece.as_view(),
            b_rem.view(i * nb_loc, 0, nb_loc, kw),
            0.0,
            &mut x_part.as_view_mut(),
        )?;
        comm.charge_flops(flops.get());

        // (c) sum the partial products over the x axis.
        let x_block = if p1 == 1 {
            x_part
        } else {
            let reduced = coll::allreduce(&x_comm, x_part.as_slice(), coll::ReduceOp::Sum)?;
            Matrix::from_vec(nb_loc, kw, reduced)?
        };
        x_result.set_block(i * nb_loc, 0, &x_block);

        mark(comm, &mut breakdown.solve);

        // --- Update step -------------------------------------------------
        if i + 1 < nblocks {
            // (d) broadcast the trailing panel L̃(T_{i+1}, S_i) along z.
            let panel_rows = nloc - (i + 1) * nb_loc;
            let panel_flat = if z == 0 {
                let lf = l_tilde_face
                    .as_ref()
                    .ok_or_else(|| internal_error("it_inv_trsm", "face rank holds no L̃"))?;
                lf.local()
                    .block((i + 1) * nb_loc, i * nb_loc, panel_rows, nb_loc)
                    .into_vec()
            } else {
                Vec::new()
            };
            let panel_flat = coll::bcast(&z_comm, 0, &panel_flat, panel_rows * nb_loc)?;
            let panel = Matrix::from_vec(panel_rows, nb_loc, panel_flat)?;

            // (e) accumulate the trailing update directly into the
            //     accumulator block (β = 1), with no intermediate matrix.
            let flops = dense::gemm_views(
                1.0,
                panel.as_view(),
                x_block.as_view(),
                1.0,
                &mut b_update_acc.view_mut((i + 1) * nb_loc, 0, panel_rows, kw),
            )?;
            comm.charge_flops(flops.get());

            // (f) lazily reduce only the next block row over the y axis and
            //     subtract it from the remaining right-hand side.
            let next = b_update_acc.block((i + 1) * nb_loc, 0, nb_loc, kw);
            let next_sum = if p1 == 1 {
                next
            } else {
                let reduced = coll::allreduce(&y_comm, next.as_slice(), coll::ReduceOp::Sum)?;
                Matrix::from_vec(nb_loc, kw, reduced)?
            };
            b_rem
                .view_mut((i + 1) * nb_loc, 0, nb_loc, kw)
                .axpy(-1.0, next_sum.as_view());
            comm.charge_flops((nb_loc * kw) as u64);

            mark(comm, &mut breakdown.update);
        }
    }

    // ------------------------------------------------------------------
    // Finalize: return X in the caller's layout.  x_result is replicated
    // over the x axis; ranks with x = 0 contribute it.
    // ------------------------------------------------------------------
    let caller_pr = caller_grid.rows();
    let caller_pc = caller_grid.cols();
    let mut x_elements = Vec::new();
    if x == 0 {
        for r in 0..nloc {
            let gi = y + r * p1;
            for c in 0..kw {
                let gj = z * kw + c;
                x_elements.push((
                    gi,
                    gj,
                    x_result[(r, c)],
                    caller_grid.rank_of(gi % caller_pr, gj % caller_pc),
                ));
            }
        }
    }
    let incoming = scatter_elements(comm, k, x_elements, cfg.log_latency())?;
    let mut x_out = DistMatrix::zeros(caller_grid, n, k);
    for (gi, gj, v) in incoming {
        x_out.local_mut()[(gi / caller_pr, gj / caller_pc)] = v;
    }
    mark(comm, &mut breakdown.finalize);

    Ok((x_out, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(
        pr: usize,
        pc: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> (Vec<T>, simnet::CostReport) {
        let out = Machine::new(pr * pc, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, pr, pc).unwrap();
                f(&grid)
            })
            .unwrap();
        (out.results, out.report)
    }

    fn check(pr: usize, pc: usize, cfg: ItInvConfig, n: usize, k: usize) {
        let (results, _) = on_grid(pr, pc, move |grid| {
            let l_global = gen::well_conditioned_lower(n, 5);
            let x_true = gen::rhs(n, k, 6);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(grid, &l_global);
            let b = DistMatrix::from_global(grid, &b_global);
            let (x, _) = it_inv_trsm(&l, &b, &cfg).unwrap();
            dense::norms::rel_diff(&x.to_global(), &x_true)
        });
        for (rank, d) in results.into_iter().enumerate() {
            assert!(
                d < 1e-8,
                "grid {pr}x{pc} cfg {cfg:?} n={n} k={k} rank {rank}: rel diff {d}"
            );
        }
    }

    #[test]
    fn single_processor() {
        check(
            1,
            1,
            ItInvConfig {
                p1: 1,
                p2: 1,
                n0: 8,
                inv_base: 8,
            },
            32,
            8,
        );
    }

    #[test]
    fn one_d_layout_whole_matrix_inverted() {
        // p1 = 1, p2 = 4: the 1D regime of Figure 1, n0 = n.
        check(
            2,
            2,
            ItInvConfig {
                p1: 1,
                p2: 4,
                n0: 32,
                inv_base: 8,
            },
            32,
            16,
        );
    }

    #[test]
    fn two_d_layout_small_blocks() {
        // p1 = 2, p2 = 1: the 2D regime, several diagonal blocks.
        check(
            2,
            2,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 8,
                inv_base: 8,
            },
            32,
            8,
        );
    }

    #[test]
    fn three_d_layout() {
        // p1 = 2, p2 = 4 on 16 processors: the full 3D cuboid of Figure 1.
        check(
            4,
            4,
            ItInvConfig {
                p1: 2,
                p2: 4,
                n0: 16,
                inv_base: 8,
            },
            64,
            16,
        );
    }

    #[test]
    fn three_d_layout_larger_face() {
        check(
            4,
            4,
            ItInvConfig {
                p1: 4,
                p2: 1,
                n0: 16,
                inv_base: 8,
            },
            64,
            16,
        );
    }

    #[test]
    fn n0_extremes_generalise_both_classical_schemes() {
        // n0 = n (full inversion) and n0 = p1 (minimal blocks) both solve.
        check(
            2,
            2,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 64,
                inv_base: 8,
            },
            64,
            8,
        );
        check(
            2,
            2,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 2,
                inv_base: 8,
            },
            64,
            8,
        );
    }

    #[test]
    fn wide_right_hand_side() {
        check(
            2,
            2,
            ItInvConfig {
                p1: 1,
                p2: 4,
                n0: 16,
                inv_base: 8,
            },
            32,
            64,
        );
    }

    #[test]
    fn caller_grid_shape_does_not_matter() {
        // The caller may hold L and B on a rectangular grid; the algorithm
        // re-grids internally.
        check(
            1,
            4,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 8,
                inv_base: 8,
            },
            32,
            8,
        );
        check(
            4,
            1,
            ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 8,
                inv_base: 8,
            },
            32,
            8,
        );
    }

    #[test]
    fn invalid_configurations_rejected() {
        let (results, _) = on_grid(2, 2, |grid| {
            let l = DistMatrix::zeros(grid, 32, 32);
            let b = DistMatrix::zeros(grid, 32, 8);
            let bad_grid = it_inv_trsm(
                &l,
                &b,
                &ItInvConfig {
                    p1: 2,
                    p2: 2,
                    n0: 8,
                    inv_base: 8,
                },
            )
            .is_err();
            let bad_n0 = it_inv_trsm(
                &l,
                &b,
                &ItInvConfig {
                    p1: 2,
                    p2: 1,
                    n0: 5,
                    inv_base: 8,
                },
            )
            .is_err();
            let bad_k = {
                let b_odd = DistMatrix::zeros(grid, 32, 6);
                it_inv_trsm(
                    &l,
                    &b_odd,
                    &ItInvConfig {
                        p1: 1,
                        p2: 4,
                        n0: 8,
                        inv_base: 8,
                    },
                )
                .is_err()
            };
            let rect_l = DistMatrix::zeros(grid, 32, 16);
            let bad_l = it_inv_trsm(
                &rect_l,
                &b,
                &ItInvConfig {
                    p1: 2,
                    p2: 1,
                    n0: 8,
                    inv_base: 8,
                },
            )
            .is_err();
            bad_grid && bad_n0 && bad_k && bad_l
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn phase_breakdown_accounts_for_all_work() {
        let (results, report) = on_grid(2, 2, |grid| {
            let n = 64;
            let k = 16;
            let l_global = gen::well_conditioned_lower(n, 1);
            let x_true = gen::rhs(n, k, 2);
            let b_global = dense::matmul(&l_global, &x_true);
            let l = DistMatrix::from_global(grid, &l_global);
            let b = DistMatrix::from_global(grid, &b_global);
            let (_, phases) = it_inv_trsm(
                &l,
                &b,
                &ItInvConfig {
                    p1: 2,
                    p2: 1,
                    n0: 16,
                    inv_base: 8,
                },
            )
            .unwrap();
            phases
        });
        for (rank, phases) in results.into_iter().enumerate() {
            let total = phases.total();
            // The per-phase counters must add up to (almost all of) what the
            // machine reports for this rank; to_global in the test harness is
            // excluded, so compare against the phase total itself.
            assert!(total.flops > 0, "rank {rank} must do work");
            assert!(phases.solve.flops > 0);
            assert!(phases.update.flops > 0);
            assert!(phases.inversion.flops > 0);
            assert!(
                total.flops <= report.per_rank[rank].flops,
                "phase accounting cannot exceed the machine's counters"
            );
        }
    }

    #[test]
    fn latency_is_dominated_by_block_count_not_matrix_size() {
        // Doubling n at fixed n0 roughly doubles the message count (the
        // n/n0·log p term); it must stay far below the O(n) of a wavefront.
        let run = |n: usize| {
            let (_, report) = on_grid(2, 2, move |grid| {
                let l_global = gen::well_conditioned_lower(n, 3);
                let b_global = gen::rhs(n, 8, 4);
                let l = DistMatrix::from_global(grid, &l_global);
                let b = DistMatrix::from_global(grid, &b_global);
                it_inv_trsm(
                    &l,
                    &b,
                    &ItInvConfig {
                        p1: 2,
                        p2: 1,
                        n0: n / 4,
                        inv_base: 8,
                    },
                )
                .unwrap();
            });
            report.max_messages()
        };
        let small = run(64);
        let large = run(128);
        // Same number of blocks (4) → similar message counts.
        assert!(
            (large as f64) < 1.5 * small as f64,
            "latency should depend on n/n0, not n ({small} vs {large})"
        );
    }
}
