//! Row-fan-out TRSM baseline (Heath & Romine, Section II-C3 of the paper).
//!
//! The classical distributed substitution algorithm for triangular systems:
//! the rows of `L`, `B` and `X` are distributed cyclically over all `p`
//! processors (a 1D layout); row `i` is solved by its owner and broadcast,
//! after which every processor updates its own later rows.  With `k`
//! right-hand sides this performs the optimal `n²k/p` flops but needs `Θ(n)`
//! broadcast rounds — the `Θ(n·log p)` synchronization cost that both the
//! recursive and the inversion-based algorithms of the paper improve on.
//! It is included as an independent sanity baseline for the experiments; the
//! conclusion-table comparison uses the paper's own recursive baseline.

use crate::error::config_error;
use crate::Result;
use dense::Matrix;
use pgrid::redist::{remap_elements, scatter_elements};
use pgrid::DistMatrix;
use simnet::coll;

/// Solve `L·X = B` by row fan-out substitution.
///
/// `L` (`n×n` lower triangular) and `B` (`n×k`) may be distributed over any
/// 2D grid; they are redistributed internally to a 1D row-cyclic layout over
/// all `p` processors and the solution is returned in the caller's layout.
pub fn wavefront_trsm(l: &DistMatrix, b: &DistMatrix) -> Result<DistMatrix> {
    let grid = l.grid();
    let comm = grid.comm();
    let p = comm.size();
    let n = l.rows();
    let k = b.cols();
    if l.cols() != n {
        return Err(config_error(
            "wavefront_trsm",
            format!("L must be square, got {}x{}", n, l.cols()),
        ));
    }
    if b.rows() != n {
        return Err(config_error(
            "wavefront_trsm",
            format!("dimension mismatch: L is {n}x{n}, B is {}x{k}", b.rows()),
        ));
    }
    let me = comm.rank();

    // Redistribute to a row-cyclic 1D layout: row i lives on rank i mod p.
    let l_rows = remap_elements(l, |i, _| i % p, true)?;
    let b_rows = remap_elements(b, |i, _| i % p, true)?;
    let my_rows = if me < n { (n - me).div_ceil(p) } else { 0 };
    let mut l_local = Matrix::zeros(my_rows, n);
    for (i, j, v) in l_rows {
        l_local[(i / p, j)] = v;
    }
    let mut b_local = Matrix::zeros(my_rows, k);
    for (i, j, v) in b_rows {
        b_local[(i / p, j)] = v;
    }

    // Forward substitution, one row at a time.
    for i in 0..n {
        let owner = i % p;
        let xi = if owner == me {
            let li = i / p;
            let pivot = l_local[(li, i)];
            if pivot.abs() < 1e-300 {
                return Err(dense::DenseError::SingularPivot {
                    index: i,
                    value: pivot,
                }
                .into());
            }
            let mut row: Vec<f64> = (0..k).map(|c| b_local[(li, c)] / pivot).collect();
            comm.charge_flops(k as u64);
            // Store the solved row back.
            for (c, v) in row.iter().enumerate() {
                b_local[(li, c)] = *v;
            }
            std::mem::take(&mut row)
        } else {
            Vec::new()
        };
        let xi = coll::bcast(comm, owner, &xi, k)?;
        // Update the rows this processor owns below row i.
        for li in 0..my_rows {
            let gi = li * p + me;
            if gi <= i {
                continue;
            }
            let lij = l_local[(li, i)];
            if lij == 0.0 {
                continue;
            }
            for c in 0..k {
                b_local[(li, c)] -= lij * xi[c];
            }
        }
        comm.charge_flops(2 * ((my_rows * k) as u64));
    }

    // Return X in the caller's layout.
    let pr = grid.rows();
    let pc = grid.cols();
    let mut elements = Vec::with_capacity(my_rows * k);
    for li in 0..my_rows {
        let gi = li * p + me;
        for c in 0..k {
            elements.push((gi, c, b_local[(li, c)], grid.rank_of(gi % pr, c % pc)));
        }
    }
    let incoming = scatter_elements(comm, k, elements, true)?;
    let mut x = DistMatrix::zeros(grid, n, k);
    for (gi, gj, v) in incoming {
        x.local_mut()[(gi / pr, gj / pc)] = v;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    fn check(pr: usize, pc: usize, n: usize, k: usize) {
        let out = Machine::new(pr * pc, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, pr, pc).unwrap();
                let l_global = gen::well_conditioned_lower(n, 31);
                let x_true = gen::rhs(n, k, 32);
                let b_global = dense::matmul(&l_global, &x_true);
                let l = DistMatrix::from_global(&grid, &l_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let x = wavefront_trsm(&l, &b).unwrap();
                dense::norms::rel_diff(&x.to_global(), &x_true)
            })
            .unwrap();
        for d in out.results {
            assert!(d < 1e-8, "pr={pr} pc={pc} n={n} k={k}: {d}");
        }
    }

    #[test]
    fn solves_on_various_grids() {
        check(1, 1, 24, 4);
        check(2, 2, 32, 8);
        check(1, 3, 21, 5);
    }

    #[test]
    fn latency_scales_linearly_with_n() {
        let run = |n: usize| {
            Machine::new(4, MachineParams::unit())
                .run(move |comm| {
                    let grid = Grid2D::new(comm, 2, 2).unwrap();
                    let l_global = gen::well_conditioned_lower(n, 1);
                    let b_global = gen::rhs(n, 4, 2);
                    let l = DistMatrix::from_global(&grid, &l_global);
                    let b = DistMatrix::from_global(&grid, &b_global);
                    wavefront_trsm(&l, &b).unwrap();
                })
                .unwrap()
                .report
                .max_messages()
        };
        let small = run(32);
        let large = run(64);
        assert!(
            large as f64 > 1.6 * small as f64,
            "wavefront latency must grow ~linearly in n"
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let rect = DistMatrix::zeros(&grid, 8, 6);
                let b = DistMatrix::zeros(&grid, 8, 4);
                let bad_l = wavefront_trsm(&rect, &b).is_err();
                let b_bad = DistMatrix::zeros(&grid, 6, 4);
                let l = DistMatrix::zeros(&grid, 8, 8);
                let bad_b = wavefront_trsm(&l, &b_bad).is_err();
                bad_l && bad_b
            })
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }
}
