//! Distributed verification helpers.
//!
//! The experiments and examples need to check solutions without gathering
//! full matrices on a single rank: [`residual`] computes the relative
//! residual `‖L·X − B‖_F / (‖L‖_F·‖X‖_F + ‖B‖_F)` using the distributed
//! multiplication of Section III and one allreduce.

use crate::mm3d::mm3d_auto;
use crate::Result;
use pgrid::DistMatrix;
use simnet::coll;

/// Relative residual of a candidate solution `X` for `L·X = B`, identical on
/// every rank.
pub fn residual(l: &DistMatrix, x: &DistMatrix, b: &DistMatrix) -> Result<f64> {
    let lx = mm3d_auto(l, x)?;
    let comm = l.grid().comm();
    let mut diff_sq = 0.0;
    let mut b_sq = 0.0;
    for (got, want) in lx
        .local()
        .as_slice()
        .iter()
        .zip(b.local().as_slice().iter())
    {
        diff_sq += (got - want) * (got - want);
        b_sq += want * want;
    }
    let l_sq: f64 = l.local().as_slice().iter().map(|v| v * v).sum();
    let x_sq: f64 = x.local().as_slice().iter().map(|v| v * v).sum();
    let sums = coll::allreduce(comm, &[diff_sq, b_sq, l_sq, x_sq], coll::ReduceOp::Sum)?;
    let denom = sums[2].sqrt() * sums[3].sqrt() + sums[1].sqrt();
    Ok(if denom == 0.0 {
        sums[0].sqrt()
    } else {
        sums[0].sqrt() / denom
    })
}

/// Relative Frobenius error between a distributed matrix and a replicated
/// reference matrix that every rank holds (used by tests and examples).
pub fn error_vs_reference(x: &DistMatrix, reference: &dense::Matrix) -> f64 {
    let reference_dist = DistMatrix::from_global(x.grid(), reference);
    x.rel_diff(&reference_dist).unwrap_or(f64::INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    #[test]
    fn residual_is_small_for_exact_solution_and_large_otherwise() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let n = 32;
                let k = 8;
                let l_global = gen::well_conditioned_lower(n, 3);
                let x_global = gen::rhs(n, k, 4);
                let b_global = dense::matmul(&l_global, &x_global);
                let l = DistMatrix::from_global(&grid, &l_global);
                let x = DistMatrix::from_global(&grid, &x_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let good = residual(&l, &x, &b).unwrap();
                let bad = residual(&l, &b, &b).unwrap();
                (good, bad)
            })
            .unwrap();
        for (good, bad) in out.results {
            assert!(good < 1e-12);
            assert!(bad > 1e-3);
        }
    }

    #[test]
    fn error_vs_reference_detects_differences() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let a_global = gen::uniform(8, 8, 1);
                let a = DistMatrix::from_global(&grid, &a_global);
                let same = error_vs_reference(&a, &a_global);
                let different = error_vs_reference(&a, &dense::Matrix::zeros(8, 8));
                (same, different)
            })
            .unwrap();
        for (same, different) in out.results {
            assert_eq!(same, 0.0);
            assert!(different > 0.1);
        }
    }
}
