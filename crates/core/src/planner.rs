//! A-priori parameter selection (the integer counterpart of Section VIII).
//!
//! The cost model (`costmodel::tuning`) gives asymptotically optimal
//! *real-valued* parameters.  The planner turns them into concrete choices
//! that satisfy the divisibility requirements of the implementations:
//! power-of-two grid faces that divide the communicator, block sizes that
//! divide the matrix dimension, and so on.  This is what makes the "a priori
//! determination of block sizes and processor grids" claim of the paper
//! actionable in code.

use crate::it_inv_trsm::ItInvConfig;
use costmodel::tuning::{self, Regime};

/// A concrete, feasible execution plan for one TRSM instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Matrix dimension.
    pub n: usize,
    /// Number of right-hand sides.
    pub k: usize,
    /// Number of processors.
    pub p: usize,
    /// The regime the cost model assigned.
    pub regime: Regime,
    /// Configuration of the iterative inversion-based algorithm.
    pub it_inv: ItInvConfig,
    /// Block size below which the recursive algorithm stops recursing.
    pub rec_base: usize,
}

/// Largest power of two `≤ limit` that divides `value`.
pub fn largest_pow2_divisor_at_most(value: usize, limit: usize) -> usize {
    let mut best = 1;
    let mut candidate = 1;
    while candidate <= limit {
        if value.is_multiple_of(candidate) {
            best = candidate;
        }
        candidate *= 2;
    }
    best
}

/// The divisor of `value` that is closest to `target` (ties broken downward)
/// among divisors that are multiples of `multiple_of`.
pub fn closest_divisor(value: usize, target: usize, multiple_of: usize) -> usize {
    let mut best = value;
    let mut best_dist = f64::INFINITY;
    for d in 1..=value {
        if !value.is_multiple_of(d) || d % multiple_of != 0 {
            continue;
        }
        let dist = (d as f64).ln() - (target.max(1) as f64).ln();
        let dist = dist.abs();
        if dist < best_dist {
            best_dist = dist;
            best = d;
        }
    }
    best
}

/// Choose the square-face dimension `p1` for the 3D matrix multiplication on
/// a `q × q` grid (so `p = q²`, `p1 | q`) multiplying an `n×n` matrix by an
/// `n×k` matrix.  `p1` must satisfy `p1² | n` and `(q/p1)² | k` for the
/// implementation's exact block exchanges; among the feasible powers of two
/// the one closest to the cost-optimal `(n·p/k)^{1/3}` is selected.
pub fn choose_mm_p1(n: usize, k: usize, q: usize) -> usize {
    let p = q * q;
    let (target, _) = costmodel::mm::mm_grid_for(n as f64, k as f64, p as f64);
    let mut best = 1usize;
    let mut best_dist = f64::INFINITY;
    let mut cand = 1usize;
    while cand <= q {
        let s = q / cand;
        let feasible = q.is_multiple_of(cand)
            && n.is_multiple_of(cand * cand)
            && k.is_multiple_of(s * s)
            && k.is_multiple_of(q);
        if feasible {
            let dist = ((cand as f64).ln() - target.ln()).abs();
            if dist < best_dist {
                best_dist = dist;
                best = cand;
            }
        }
        cand *= 2;
    }
    best
}

/// Build a feasible plan for solving `L·X = B` with `L` of dimension `n`,
/// `k` right-hand sides and `p` processors.
///
/// The caller's grid is assumed to be (close to) square; the iterative
/// algorithm internally re-grids the processors as `p1 × p1 × p2`, so the
/// only hard requirement is that the returned `p1² · p2 = p`.
pub fn plan(n: usize, k: usize, p: usize) -> Plan {
    plan_rev(costmodel::CostModelRev::Ipdps17, n, k, p)
}

/// [`plan`] under an explicit cost-model revision: the real-valued targets
/// (regime, `p1`, `n0`) come from `tuning::plan_rev`, so a `Tang24` caller
/// gets grids placed by the corrected bandwidth bound's regime boundaries.
/// The integer feasibility rounding below is revision-independent.
pub fn plan_rev(rev: costmodel::CostModelRev, n: usize, k: usize, p: usize) -> Plan {
    let model = tuning::plan_rev(rev, n, k, p);

    // p1: power of two with p1² | p, close to the model's target.
    let mut p1 = 1usize;
    let mut best_dist = f64::INFINITY;
    let mut cand = 1usize;
    while cand * cand <= p {
        if p.is_multiple_of(cand * cand) && n.is_multiple_of(cand) {
            let dist = ((cand as f64).ln() - model.p1.max(1.0).ln()).abs();
            if dist < best_dist {
                best_dist = dist;
                p1 = cand;
            }
        }
        cand *= 2;
    }
    let mut p2 = p / (p1 * p1);
    // k must be divisible by p2 (the right-hand side is split into p2 slabs).
    while p2 > 1 && !k.is_multiple_of(p2) {
        // Fall back to a flatter grid: fold excess depth into idle replication
        // by halving p2 and doubling nothing (the implementation requires
        // p1²·p2 = p exactly, so instead shrink p1 if possible).
        if p1 > 1 && p.is_multiple_of((p1 / 2) * (p1 / 2)) {
            p1 /= 2;
            p2 = p / (p1 * p1);
        } else {
            break;
        }
    }
    if !k.is_multiple_of(p2) || p1 * p1 * p2 != p {
        // Last resort: 1D layout (always feasible when k % p == 0, otherwise
        // the caller should pad; we still return a structurally valid plan).
        p1 = 1;
        p2 = p;
    }

    // n0: divisor of n, multiple of p1, close to the model's target.
    let n0 = closest_divisor(n, model.n0.round().max(1.0) as usize, p1.max(1));

    // Inversion sub-grid: q = p_face·n0/n processors per diagonal block on the
    // face (see diag_inv); the concrete side length is chosen there, so the
    // plan records the model's recommendation for reporting purposes only.
    let it_inv = ItInvConfig {
        p1,
        p2,
        n0,
        inv_base: 64,
    };

    // Recursive baseline: stop recursing around the paper's base-case size.
    let rec_base = closest_divisor(n, (n / (p.max(2)).isqrt().max(2)).max(8), 1);

    Plan {
        n,
        k,
        p,
        regime: model.regime,
        it_inv,
        rec_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_divisor_helper() {
        assert_eq!(largest_pow2_divisor_at_most(64, 16), 16);
        assert_eq!(largest_pow2_divisor_at_most(48, 64), 16);
        assert_eq!(largest_pow2_divisor_at_most(7, 8), 1);
        assert_eq!(largest_pow2_divisor_at_most(96, 8), 8);
    }

    #[test]
    fn closest_divisor_helper() {
        assert_eq!(closest_divisor(64, 16, 1), 16);
        assert_eq!(closest_divisor(64, 15, 1), 16);
        assert_eq!(closest_divisor(60, 16, 1), 15);
        assert_eq!(closest_divisor(64, 10, 4), 8);
        assert_eq!(closest_divisor(64, 1000, 1), 64);
    }

    #[test]
    fn mm_p1_is_feasible() {
        for (n, k, q) in [
            (256usize, 64usize, 4usize),
            (512, 512, 8),
            (64, 4096, 8),
            (1024, 32, 16),
        ] {
            let p1 = choose_mm_p1(n, k, q);
            assert!(q % p1 == 0);
            assert_eq!(n % (p1 * p1), 0);
            let s = q / p1;
            assert_eq!(k % (s * s), 0);
        }
    }

    #[test]
    fn plan_produces_exact_grid_factorisation() {
        for (n, k, p) in [
            (256usize, 64usize, 16usize),
            (512, 128, 64),
            (128, 4096, 64),
            (4096, 64, 16),
        ] {
            let plan = plan(n, k, p);
            assert_eq!(plan.it_inv.p1 * plan.it_inv.p1 * plan.it_inv.p2, p);
            assert_eq!(n % plan.it_inv.n0, 0);
            assert_eq!(plan.it_inv.n0 % plan.it_inv.p1.max(1), 0);
            assert_eq!(n % plan.it_inv.p1.max(1), 0);
        }
    }

    #[test]
    fn plan_follows_regimes() {
        // Few right-hand sides at scale → 2D-ish (p2 small).
        let wide = plan(4096, 16, 64);
        assert!(wide.it_inv.p2 <= 4);
        // Many right-hand sides → 1D (p1 = 1).
        let tall = plan(32, 8192, 64);
        assert_eq!(tall.it_inv.p1, 1);
        assert_eq!(tall.it_inv.p2, 64);
        assert_eq!(tall.regime, Regime::OneLargeDim);
    }

    #[test]
    fn plan_n0_spans_generalisation_range() {
        // In the 1D regime the whole matrix is inverted (n0 = n).
        let p = plan(32, 8192, 64);
        assert_eq!(p.it_inv.n0, 32);
        // In the 2D regime only small blocks are inverted (n0 < n).
        let p = plan(8192, 16, 16);
        assert!(p.it_inv.n0 < 8192);
    }
}
