//! Distributed recursive triangular inversion (Section V of the paper).
//!
//! The inverse of a blocked lower-triangular matrix is
//!
//! ```text
//! [ L11   0  ]⁻¹   =   [        L11⁻¹          0    ]
//! [ L21  L22 ]          [ -L22⁻¹·L21·L11⁻¹    L22⁻¹ ]
//! ```
//!
//! The two diagonal blocks are **independent**, so the paper assigns each to
//! half of the processors and inverts them *concurrently*; the off-diagonal
//! block then needs two matrix multiplications on the full grid.  Because the
//! recursion depth is `log n` (bounded by `log q` here, since the processor
//! grid halves at every level) and every level costs only `O(log p)` messages,
//! the total synchronization cost is `O(log² p)` — the key property that lets
//! the iterative TRSM avoid the `Θ(√p)`-type latency of the recursive solver.
//!
//! Deviation from the paper's pseudocode (documented in DESIGN.md): the two
//! children use the diagonal `(q/2)×(q/2)` quadrants of the parent grid (p/4
//! processors each, p/2 in total), exactly as the paper's `dim(Π1) = dim(Π2) =
//! (√p/2 × √p/2)` split; redistribution between parent and child grids is the
//! keyed all-to-all the paper bounds "by an all-to-all".

use crate::error::config_error;
use crate::mm3d::{mm3d, MmConfig};
use crate::planner::choose_mm_p1;
use crate::Result;
use dense::{Matrix, Triangle};
use pgrid::redist::scatter_elements;
use pgrid::{DistMatrix, Grid2D};

/// Configuration of the distributed triangular inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriInvConfig {
    /// Matrix dimension at or below which the matrix is gathered and inverted
    /// redundantly by every processor of the (sub-)grid.
    pub base_size: usize,
    /// Route redistributions through the Bruck all-to-all (`log p` latency).
    pub log_latency: bool,
}

impl Default for TriInvConfig {
    fn default() -> Self {
        TriInvConfig {
            base_size: 64,
            log_latency: true,
        }
    }
}

/// Invert a lower-triangular matrix distributed cyclically over a square
/// processor grid.  Returns the inverse in the same distribution.
pub fn tri_inv(l: &DistMatrix, cfg: &TriInvConfig) -> Result<DistMatrix> {
    let grid = l.grid();
    if grid.rows() != grid.cols() {
        return Err(config_error(
            "tri_inv",
            format!("grid must be square, got {}x{}", grid.rows(), grid.cols()),
        ));
    }
    if l.rows() != l.cols() {
        return Err(config_error(
            "tri_inv",
            format!("matrix must be square, got {}x{}", l.rows(), l.cols()),
        ));
    }
    tri_inv_inner(l, cfg)
}

fn tri_inv_inner(l: &DistMatrix, cfg: &TriInvConfig) -> Result<DistMatrix> {
    let grid = l.grid();
    let q = grid.rows();
    let n = l.rows();

    // Base case: gather the whole matrix and invert it redundantly on every
    // processor of this (sub-)grid, as the paper's pseudocode does once the
    // grid is one-dimensional.
    let splittable = q >= 2 && q.is_multiple_of(2) && n.is_multiple_of(2 * q) && n > cfg.base_size;
    if !splittable {
        // Keep only the lower triangle so the returned inverse has a clean
        // zero upper part regardless of what the storage held there (the
        // recursive path below drops those entries too).
        let mut full = l.try_to_global()?.lower_triangular_part();
        let flops = dense::tri_invert_in_place(Triangle::Lower, &mut full.as_view_mut(), 16)?;
        grid.comm().charge_flops(flops.get());
        return Ok(DistMatrix::from_global(grid, &full));
    }

    let h = n / 2;
    let qh = q / 2;
    let comm = grid.comm();

    let l11 = l.subview(0, h, 0, h)?;
    let l21 = l.subview(h, h, 0, h)?;
    let l22 = l.subview(h, h, h, h)?;

    // Children: the two diagonal (q/2)×(q/2) quadrants of the grid.
    let child_a_members: Vec<usize> = (0..q * q)
        .filter(|&r| {
            let (row, col) = grid.coords_of(r);
            row < qh && col < qh
        })
        .collect();
    let child_b_members: Vec<usize> = (0..q * q)
        .filter(|&r| {
            let (row, col) = grid.coords_of(r);
            row >= qh && col >= qh
        })
        .collect();
    // Every rank calls both subgroups so the context derivation stays aligned.
    let child_a_comm = comm.subgroup(&child_a_members);
    let child_b_comm = comm.subgroup(&child_b_members);

    // Send each child its diagonal block, redistributed to the child grid's
    // cyclic layout (only the lower-triangular part carries information).
    let send_block_to_child = |block: &DistMatrix, child_base: (usize, usize)| {
        let mut elements = Vec::new();
        let local = block.local();
        for li in 0..local.rows() {
            let gi = block.global_row(li);
            for lj in 0..local.cols() {
                let gj = block.global_col(lj);
                if gj > gi {
                    continue;
                }
                let dest = grid.rank_of(child_base.0 + gi % qh, child_base.1 + gj % qh);
                elements.push((gi, gj, local[(li, lj)], dest));
            }
        }
        scatter_elements(comm, h, elements, cfg.log_latency)
    };
    let recv_a = send_block_to_child(&l11, (0, 0))?;
    let recv_b = send_block_to_child(&l22, (qh, qh))?;

    // Each child inverts its block concurrently on its own grid.
    let my_inverse_piece: Option<(Matrix, bool)> = if let Ok(sub) = &child_a_comm {
        let child_grid = Grid2D::new(sub, qh, qh)?;
        let mut child_l = DistMatrix::zeros(&child_grid, h, h);
        fill_from_triples(&mut child_l, &recv_a, qh);
        let inv = tri_inv_inner(&child_l, cfg)?;
        Some((inv.local().clone(), true))
    } else if let Ok(sub) = &child_b_comm {
        let child_grid = Grid2D::new(sub, qh, qh)?;
        let mut child_l = DistMatrix::zeros(&child_grid, h, h);
        fill_from_triples(&mut child_l, &recv_b, qh);
        let inv = tri_inv_inner(&child_l, cfg)?;
        Some((inv.local().clone(), false))
    } else {
        None
    };

    // Redistribute both inverted diagonal blocks back to the parent grid.
    let send_back = |piece: Option<&Matrix>, is_first: bool| {
        let mut elements = Vec::new();
        if let Some(local) = piece {
            // This rank is a member of the corresponding child grid; its
            // child-grid coordinates are its parent coordinates modulo qh.
            let (row, col) = grid.my_coords();
            let (cx, cy) = (row % qh, col % qh);
            for li in 0..local.rows() {
                let gi = li * qh + cx;
                for lj in 0..local.cols() {
                    let gj = lj * qh + cy;
                    if gj > gi {
                        continue;
                    }
                    let dest = grid.rank_of(gi % q, gj % q);
                    elements.push((gi, gj, local[(li, lj)], dest));
                }
            }
        }
        let _ = is_first;
        scatter_elements(comm, h, elements, cfg.log_latency)
    };
    let (piece_a, piece_b) = match &my_inverse_piece {
        Some((m, true)) => (Some(m), None),
        Some((m, false)) => (None, Some(m)),
        None => (None, None),
    };
    let back_a = send_back(piece_a, true)?;
    let back_b = send_back(piece_b, false)?;

    let mut inv11 = DistMatrix::zeros(grid, h, h);
    fill_from_triples(&mut inv11, &back_a, q);
    let mut inv22 = DistMatrix::zeros(grid, h, h);
    fill_from_triples(&mut inv22, &back_b, q);

    // Off-diagonal block: inv21 = −inv22 · L21 · inv11, as two multiplications
    // on the full grid.
    let mm_cfg = MmConfig {
        p1: choose_mm_p1(h, h, q),
        log_latency: cfg.log_latency,
    };
    let t = mm3d(&inv22, &l21, &mm_cfg)?;
    let mut inv21 = mm3d(&t, &inv11, &mm_cfg)?;
    inv21.local_mut().scale_in_place(-1.0);

    // Assemble the inverse.
    let mut out = DistMatrix::zeros(grid, n, n);
    out.set_subview(0, 0, &inv11)?;
    out.set_subview(h, 0, &inv21)?;
    out.set_subview(h, h, &inv22)?;
    Ok(out)
}

/// Place `(global row, global col, value)` triples into the local piece of a
/// matrix distributed cyclically over a `side × side` grid.
fn fill_from_triples(mat: &mut DistMatrix, triples: &[(usize, usize, f64)], side: usize) {
    let (x, y) = mat.grid().my_coords();
    for &(gi, gj, v) in triples {
        debug_assert_eq!(gi % side, x);
        debug_assert_eq!(gj % side, y);
        mat.local_mut()[(gi / side, gj / side)] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use simnet::{Machine, MachineParams};

    fn on_grid<T: Send>(
        q: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> (Vec<T>, simnet::CostReport) {
        let out = Machine::new(q * q, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                f(&grid)
            })
            .unwrap();
        (out.results, out.report)
    }

    fn check_inverse(q: usize, n: usize, base: usize) {
        let (results, _) = on_grid(q, move |grid| {
            let l_global = gen::well_conditioned_lower(n, 42);
            let l = DistMatrix::from_global(grid, &l_global);
            let inv = tri_inv(
                &l,
                &TriInvConfig {
                    base_size: base,
                    log_latency: true,
                },
            )
            .unwrap();
            let got = inv.to_global();
            let prod = dense::matmul(&l_global, &got);
            let lower_ok = got.is_lower_triangular();
            (
                dense::norms::rel_diff(&prod, &Matrix::identity(n)),
                lower_ok,
            )
        });
        for (d, lower_ok) in results {
            assert!(d < 1e-8, "q={q} n={n}: L·L⁻¹ differs from I by {d}");
            assert!(lower_ok, "inverse must stay lower triangular");
        }
    }

    #[test]
    fn single_processor_inverts() {
        check_inverse(1, 32, 8);
    }

    #[test]
    fn two_by_two_grid_recursion() {
        check_inverse(2, 32, 8);
    }

    #[test]
    fn four_by_four_grid_two_levels() {
        check_inverse(4, 64, 8);
    }

    #[test]
    fn base_size_forces_early_gather() {
        // With base_size >= n the whole inversion happens in the base case.
        check_inverse(2, 32, 64);
    }

    #[test]
    fn non_power_of_two_dimension_falls_back() {
        // n = 48 on a 2x2 grid: first split gives h = 24, which on the child
        // 1x1 grids is a plain local inversion.
        check_inverse(2, 48, 8);
    }

    #[test]
    fn rejects_rectangular_inputs() {
        let (results, _) = on_grid(2, |grid| {
            let rect = DistMatrix::zeros(grid, 8, 12);
            tri_inv(&rect, &TriInvConfig::default()).is_err()
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn rejects_non_square_grid() {
        let out = Machine::new(2, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 1, 2).unwrap();
                let l = DistMatrix::zeros(&grid, 8, 8);
                tri_inv(&l, &TriInvConfig::default()).is_err()
            })
            .unwrap();
        assert!(out.results.into_iter().all(|v| v));
    }

    #[test]
    fn latency_stays_polylogarithmic() {
        // The whole point of the inversion: on a 4x4 grid the number of
        // messages along the critical path stays small (O(log² p) collective
        // rounds), far below the O(n/q) rounds a wavefront solve would need.
        let n = 128;
        let (_, report) = on_grid(4, move |grid| {
            let l_global = gen::well_conditioned_lower(n, 1);
            let l = DistMatrix::from_global(grid, &l_global);
            tri_inv(
                &l,
                &TriInvConfig {
                    base_size: 16,
                    log_latency: true,
                },
            )
            .unwrap();
        });
        assert!(
            report.max_messages() < 300,
            "latency {} should be polylogarithmic, not O(n)",
            report.max_messages()
        );
    }
}
