//! 3D matrix multiplication from a 2D cyclic layout (Section III of the paper).
//!
//! Computes `B = A·X` where `A` is `n×n` and `X` is `n×k`, both distributed
//! cyclically over the same square `q×q` processor grid, using a logical
//! `p1 × p1 × p2` processor grid with `p = q² = p1²·p2`.  The schedule follows
//! the paper:
//!
//! 1. each group of `p2` processors sharing the coordinates
//!    `(i, j) = (x mod p1, y mod p1)` **allgathers** its pieces of the strided
//!    block `A(i : p1 : n, j : p1 : n)`                      (cost `β·n²/p1²`),
//! 2. the right-hand side is **transposed** to the layout the next step
//!    needs (the paper's lines 3–4; here a keyed all-to-all, a lower-order
//!    term `O(β·nk·log p / p)`),
//! 3. each group of `p1` processors sharing `(j, l)` **allgathers**
//!    `X(j : p1 : n, slab_l)`                                (cost `β·nk/(p1p2)`),
//! 4. every processor multiplies its `(n/p1)×(n/p1)` block of `A` by its
//!    `(n/p1)×(k/p2)` block of `X`                           (cost `γ·n²k/p`),
//! 5. each group of `p1` processors sharing `(i, l)` **reduce-scatters** the
//!    partial results                                        (cost `(β+γ)·nk/(p1p2)`),
//! 6. the result is **transposed back** to the cyclic layout of `B`
//!    (lower-order, like step 2).
//!
//! The measured per-processor costs therefore reproduce the paper's
//! `T_MM = β·(n²/p1²·1_{p2} + 2nk/(p1p2)) + γ·n²k/p + O(α·log p + β·nk·log p/p)`.

use crate::error::config_error;
use crate::Result;
use dense::Matrix;
use pgrid::redist::{remap_elements, scatter_elements};
use pgrid::DistMatrix;
use simnet::coll;

/// Configuration of one 3D multiplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmConfig {
    /// Square-face dimension of the logical `p1 × p1 × p2` grid
    /// (`p1` must divide the 2D grid dimension `q`; `p2 = (q/p1)²`).
    pub p1: usize,
    /// Route the layout transposes through the Bruck all-to-all
    /// (`log p` messages) instead of direct pairwise exchange.
    pub log_latency: bool,
}

impl MmConfig {
    /// A 2D configuration (`p1 = q`, `p2 = 1`): no replication of `A`.
    pub fn two_dimensional(q: usize) -> Self {
        MmConfig {
            p1: q,
            log_latency: true,
        }
    }
}

/// Multiply `A (n×n) · X (n×k)` on the grid both operands are distributed
/// over, using the automatically chosen (cost-optimal feasible) `p1`.
pub fn mm3d_auto(a: &DistMatrix, x: &DistMatrix) -> Result<DistMatrix> {
    let q = a.grid().rows();
    let p1 = crate::planner::choose_mm_p1(a.rows(), x.cols(), q);
    mm3d(
        a,
        x,
        &MmConfig {
            p1,
            log_latency: true,
        },
    )
}

/// Multiply `A (n×n) · X (n×k)` with an explicit [`MmConfig`].
pub fn mm3d(a: &DistMatrix, x: &DistMatrix, cfg: &MmConfig) -> Result<DistMatrix> {
    let grid = a.grid();
    let q = grid.rows();
    let n = a.rows();
    let k = x.cols();

    if grid.rows() != grid.cols() {
        return Err(config_error(
            "mm3d",
            format!("grid must be square, got {}x{}", grid.rows(), grid.cols()),
        ));
    }
    if a.cols() != n {
        return Err(config_error(
            "mm3d",
            format!("A must be square, got {}x{}", n, a.cols()),
        ));
    }
    if x.rows() != n {
        return Err(config_error(
            "mm3d",
            format!(
                "inner dimensions disagree: A is {}x{}, X is {}x{}",
                n,
                n,
                x.rows(),
                k
            ),
        ));
    }
    if x.grid().rows() != q || x.grid().cols() != q {
        return Err(config_error(
            "mm3d",
            "A and X must be distributed over the same grid",
        ));
    }

    // Single processor: plain local multiplication.
    if q == 1 {
        let mut c = Matrix::zeros(n, k);
        let flops = dense::gemm(1.0, a.local(), x.local(), 0.0, &mut c)?;
        grid.comm().charge_flops(flops.get());
        return DistMatrix::from_local(grid, n, k, c).map_err(Into::into);
    }

    let p1 = cfg.p1;
    if p1 == 0 || !q.is_multiple_of(p1) {
        return Err(config_error(
            "mm3d",
            format!("p1 = {p1} must divide the grid dimension q = {q}"),
        ));
    }
    let s = q / p1;
    let p2 = s * s;
    if !n.is_multiple_of(q) || !k.is_multiple_of(q) {
        return Err(config_error(
            "mm3d",
            format!("n = {n} and k = {k} must be divisible by the grid dimension q = {q}"),
        ));
    }
    if !n.is_multiple_of(p1 * p1) {
        return Err(config_error(
            "mm3d",
            format!("n = {n} must be divisible by p1² = {}", p1 * p1),
        ));
    }
    if !k.is_multiple_of(p2) {
        return Err(config_error(
            "mm3d",
            format!("k = {k} must be divisible by p2 = {p2}"),
        ));
    }

    let comm = grid.comm();
    let (gx, gy) = grid.my_coords();
    let i = gx % p1;
    let j = gy % p1;
    let li = gx / p1;
    let lj = gy / p1;
    let l = li * s + lj;
    let nb = n / p1; // edge of the gathered A block
    let kw = k / p2; // width of a right-hand-side slab
    let contrib_rows = n / (p1 * p1); // rows each member contributes to the X allgather

    // ---- Step 1: allgather the strided block A(i : p1 : n, j : p1 : n). ----
    let a_blk = if p2 == 1 {
        a.local().clone()
    } else {
        let group = grid.subgroup_where(|r, c| r % p1 == i && c % p1 == j)?;
        let gathered = coll::allgather(&group, a.local().as_slice())?;
        let piece_len = (n / q) * (n / q);
        let mut blk = Matrix::zeros(nb, nb);
        for m in 0..p2 {
            let ui = m / s;
            let uj = m % s;
            let piece = Matrix::from_vec(
                n / q,
                n / q,
                gathered[m * piece_len..(m + 1) * piece_len].to_vec(),
            )?;
            blk.set_strided_block(ui, s, uj, s, &piece);
        }
        blk
    };

    // ---- Step 2: transpose X to the pre-allgather layout. ----
    let dest_of = |gr: usize, gc: usize| -> usize {
        let j_d = gr % p1;
        let rb = gr / p1;
        let i_d = rb % p1;
        let l_d = gc / kw;
        let li_d = l_d / s;
        let lj_d = l_d % s;
        grid.rank_of(i_d + p1 * li_d, j_d + p1 * lj_d)
    };
    let received = remap_elements(x, dest_of, cfg.log_latency)?;
    let mut x_contrib = Matrix::zeros(contrib_rows, kw);
    for (gr, gc, v) in received {
        debug_assert_eq!(gr % p1, j);
        debug_assert_eq!((gr / p1) % p1, i);
        debug_assert_eq!(gc / kw, l);
        let t = (gr / p1 - i) / p1;
        x_contrib[(t, gc - l * kw)] = v;
    }

    // ---- Step 3: allgather X(j : p1 : n, slab_l) within the p1-group. ----
    let x_blk = if p1 == 1 {
        x_contrib
    } else {
        let group = grid.subgroup_where(|r, c| c == gy && r / p1 == li)?;
        let gathered = coll::allgather(&group, x_contrib.as_slice())?;
        let piece_len = contrib_rows * kw;
        let mut blk = Matrix::zeros(nb, kw);
        for m in 0..p1 {
            let piece = Matrix::from_vec(
                contrib_rows,
                kw,
                gathered[m * piece_len..(m + 1) * piece_len].to_vec(),
            )?;
            blk.set_strided_block(m, p1, 0, 1, &piece);
        }
        blk
    };

    // ---- Step 4: local multiplication of the gathered blocks. ----
    let mut c_part = Matrix::zeros(nb, kw);
    let flops = dense::gemm(1.0, &a_blk, &x_blk, 0.0, &mut c_part)?;
    comm.charge_flops(flops.get());

    // ---- Step 5: reduce-scatter the partial results within the p1-group. ----
    let my_chunk = if p1 == 1 {
        c_part
    } else {
        // Reorder rows so member j' owns the contiguous chunk of rows rb ≡ j'.
        let mut buffer = Vec::with_capacity(nb * kw);
        for owner in 0..p1 {
            for t in 0..contrib_rows {
                buffer.extend_from_slice(c_part.row(owner + t * p1));
            }
        }
        let group = grid.subgroup_where(|r, c| r == gx && c / p1 == lj)?;
        let reduced = coll::reduce_scatter(&group, &buffer, coll::ReduceOp::Sum)?;
        Matrix::from_vec(contrib_rows, kw, reduced)?
    };

    // ---- Step 6: transpose the result back to the cyclic layout of B. ----
    // My chunk holds B rows a = i + p1·(j + t·p1) for t in 0..contrib_rows
    // (or all of rows ≡ i when p1 = 1), columns of slab l.
    let mut elements = Vec::with_capacity(my_chunk.len());
    for t in 0..my_chunk.rows() {
        let rb = if p1 == 1 { t } else { j + t * p1 };
        let gr = i + rb * p1;
        for c in 0..kw {
            let gc = l * kw + c;
            elements.push((gr, gc, my_chunk[(t, c)], grid.rank_of(gr % q, gc % q)));
        }
    }
    let incoming = scatter_elements(comm, k, elements, cfg.log_latency)?;
    let mut b = DistMatrix::zeros(grid, n, k);
    for (gr, gc, v) in incoming {
        let local_r = gr / q;
        let local_c = gc / q;
        b.local_mut()[(local_r, local_c)] = v;
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    /// Run `f` on a q×q grid and return the per-rank results plus the report.
    fn on_grid<T: Send>(
        q: usize,
        f: impl Fn(&Grid2D) -> T + Send + Sync,
    ) -> (Vec<T>, simnet::CostReport) {
        let out = Machine::new(q * q, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, q, q).unwrap();
                f(&grid)
            })
            .unwrap();
        (out.results, out.report)
    }

    fn check_mm(q: usize, p1: usize, n: usize, k: usize) {
        let (results, _) = on_grid(q, move |grid| {
            let a_global = gen::uniform(n, n, 11);
            let x_global = gen::uniform(n, k, 22);
            let a = DistMatrix::from_global(grid, &a_global);
            let x = DistMatrix::from_global(grid, &x_global);
            let b = mm3d(
                &a,
                &x,
                &MmConfig {
                    p1,
                    log_latency: true,
                },
            )
            .unwrap();
            let expect = dense::matmul(&a_global, &x_global);
            let got = b.to_global();
            dense::norms::rel_diff(&got, &expect)
        });
        for (rank, d) in results.into_iter().enumerate() {
            assert!(
                d < 1e-10,
                "q={q} p1={p1} n={n} k={k} rank={rank}: rel diff {d}"
            );
        }
    }

    #[test]
    fn single_processor_multiplies_locally() {
        check_mm(1, 1, 16, 8);
    }

    #[test]
    fn two_by_two_grid_all_p1_choices() {
        check_mm(2, 1, 16, 8);
        check_mm(2, 2, 16, 8);
    }

    #[test]
    fn four_by_four_grid_all_p1_choices() {
        check_mm(4, 1, 32, 16);
        check_mm(4, 2, 32, 16);
        check_mm(4, 4, 32, 16);
    }

    #[test]
    fn rectangular_right_hand_sides() {
        // Wide right-hand side (k > n) and narrow (k < n).
        check_mm(2, 2, 8, 32);
        check_mm(4, 4, 64, 16);
        check_mm(4, 2, 16, 64);
    }

    #[test]
    fn auto_configuration_works() {
        let (results, _) = on_grid(4, |grid| {
            let a_global = gen::uniform(64, 64, 3);
            let x_global = gen::uniform(64, 16, 4);
            let a = DistMatrix::from_global(grid, &a_global);
            let x = DistMatrix::from_global(grid, &x_global);
            let b = mm3d_auto(&a, &x).unwrap();
            dense::norms::rel_diff(&b.to_global(), &dense::matmul(&a_global, &x_global))
        });
        assert!(results.into_iter().all(|d| d < 1e-10));
    }

    #[test]
    fn direct_transposes_give_same_result() {
        let (results, _) = on_grid(2, |grid| {
            let a_global = gen::uniform(16, 16, 5);
            let x_global = gen::uniform(16, 8, 6);
            let a = DistMatrix::from_global(grid, &a_global);
            let x = DistMatrix::from_global(grid, &x_global);
            let b1 = mm3d(
                &a,
                &x,
                &MmConfig {
                    p1: 2,
                    log_latency: true,
                },
            )
            .unwrap();
            let b2 = mm3d(
                &a,
                &x,
                &MmConfig {
                    p1: 2,
                    log_latency: false,
                },
            )
            .unwrap();
            b1.rel_diff(&b2).unwrap()
        });
        assert!(results.into_iter().all(|d| d < 1e-14));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (results, _) = on_grid(2, |grid| {
            let a = DistMatrix::zeros(grid, 16, 16);
            let x = DistMatrix::zeros(grid, 16, 8);
            let bad_p1 = mm3d(
                &a,
                &x,
                &MmConfig {
                    p1: 3,
                    log_latency: true,
                },
            )
            .is_err();
            let rect_a = DistMatrix::zeros(grid, 16, 12);
            let bad_square = mm3d(
                &rect_a,
                &x,
                &MmConfig {
                    p1: 2,
                    log_latency: true,
                },
            )
            .is_err();
            let mismatched = {
                let y = DistMatrix::zeros(grid, 12, 8);
                mm3d(
                    &a,
                    &y,
                    &MmConfig {
                        p1: 2,
                        log_latency: true,
                    },
                )
                .is_err()
            };
            let bad_divisibility = {
                let a2 = DistMatrix::zeros(grid, 18, 18);
                let x2 = DistMatrix::zeros(grid, 18, 8);
                mm3d(
                    &a2,
                    &x2,
                    &MmConfig {
                        p1: 2,
                        log_latency: true,
                    },
                )
                .is_err()
            };
            bad_p1 && bad_square && mismatched && bad_divisibility
        });
        assert!(results.into_iter().all(|v| v));
    }

    #[test]
    fn bandwidth_matches_leading_order_model() {
        // On a 4x4 grid with p1 = 2 (p2 = 4), the main bandwidth terms are
        // n²/p1² (A allgather) + 2nk/(p1·p2) (X allgather + reduce-scatter).
        let n = 256;
        let k = 64;
        let q = 4;
        let p1 = 2;
        let (_, report) = on_grid(q, move |grid| {
            let a = DistMatrix::from_fn(grid, n, n, |i, j| ((i * 7 + j) % 13) as f64);
            let x = DistMatrix::from_fn(grid, n, k, |i, j| ((i + j * 3) % 7) as f64);
            mm3d(
                &a,
                &x,
                &MmConfig {
                    p1,
                    log_latency: true,
                },
            )
            .unwrap();
        });
        let p2 = (q / p1) * (q / p1);
        let main = (n * n / (p1 * p1) + 2 * n * k / (p1 * p2)) as f64;
        let measured = report.max_words() as f64;
        // Lower-order transpose terms and the ≤2× key encoding overhead on
        // them keep the measurement within a modest factor of the model.
        assert!(measured > 0.8 * main, "measured {measured} vs model {main}");
        assert!(measured < 2.0 * main, "measured {measured} vs model {main}");
        // Latency stays logarithmic (a handful of collective rounds).
        assert!(report.max_messages() < 64);
        // Flops are load balanced: n²k/p multiply-adds → 2·n²k/p flops, plus
        // the (tiny) additions performed inside the reduce-scatter.
        let per_proc = (2 * n * n * k / (q * q)) as u64;
        assert!(report.max_flops() >= per_proc);
        assert!(report.max_flops() < per_proc + (n * k) as u64);
    }
}
