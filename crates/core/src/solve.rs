//! The staged, backend-uniform solver API: **request → plan → solution**.
//!
//! Every triangular solve in the workspace — a local dense
//! [`trsm`](fn@dense::trsm), a level-scheduled sparse apply (`sparse`), or
//! a distributed
//! solve on the simulated machine (`catrsm`'s algorithms) — is described by
//! the same [`SolveRequest`]: which triangle the operand occupies, whether
//! it is applied transposed ([`Transpose`]), whether its diagonal is
//! implicit ones ([`Diag`]), which side of the unknown it sits on
//! ([`Side`]), and optional pins (worker budget, distributed algorithm).
//!
//! A request **lowers** into an inspectable [`Plan`] before anything runs:
//! the plan records the chosen algorithm and its concrete parameters (the
//! Section VIII [`crate::planner`] grid for distributed solves, the
//! level-schedule shape for sparse ones, the panel blocking for dense
//! ones) together with the cost model's *predicted* α–β–γ cost — the
//! "a priori" workflow of the paper, exposed as an API stage.  Executing a
//! plan yields a [`Solution`] whose [`SolveReport`] uniformly carries what
//! was *measured*: the [`FlopCount`], the simulated communication
//! [`CostCounters`] and per-phase breakdown (distributed), the
//! level/barrier counts (sparse), and an optional relative residual.
//!
//! ```
//! use catrsm::SolveRequest;
//! use dense::gen;
//! let n = 96;
//! let l = gen::well_conditioned_lower(n, 3);
//! let x_true = gen::rhs(n, 8, 4);
//! let b = dense::matmul(&l, &x_true);
//! let plan = SolveRequest::lower().plan_dense(n, 8).unwrap();
//! let sol = plan.execute_dense(&l, &b).unwrap();
//! assert!(dense::norms::rel_diff(&sol.x, &x_true) < 1e-9);
//! assert_eq!(sol.report.flops, dense::flops::trsm_flops(n, 8));
//! // Transposed solves need no materialized Lᵀ on any backend:
//! let bt = dense::gemm::matmul(&l.transpose(), &x_true);
//! let st = SolveRequest::lower().transposed().solve_dense(&l, &bt).unwrap();
//! assert!(dense::norms::rel_diff(&st.x, &x_true) < 1e-8);
//! ```

use crate::api::{reverse_both, reverse_rows, Algorithm};
use crate::error::config_error;
use crate::it_inv_trsm::{it_inv_trsm, PhaseBreakdown};
use crate::planner;
use crate::rec_trsm::{rec_trsm, RecTrsmConfig};
use crate::verify;
use crate::wavefront::wavefront_trsm;
use crate::Result;
use costmodel::{AlgorithmKind, Cost, CostModelRev, Regime};
use dense::flops::trsm_flops;
use dense::{Diag, FlopCount, Matrix, Side, SolveOpts, Transpose, Triangle};
use pgrid::DistMatrix;
use simnet::CostCounters;
use sparse::{SchedulePolicy, SparseTri};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide count of plans built (every `plan_dense` / `plan_sparse` /
/// `plan_distributed` lowering, whether called directly or through the
/// one-shot `solve_*` conveniences).
///
/// The counterpart of [`SparseTri::analysis_count`] one stage earlier in
/// the pipeline: a plan cache (the `serve` crate) asserts steady-state
/// behavior by snapshotting this before a traffic window and checking it
/// stayed flat — repeat traffic must hit cached `Arc<Plan>`s, not re-plan.
static PLAN_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`Plan`]s lowered by this process so far (monotone).
/// Relaxed ordering: callers only compare snapshots taken on the same
/// thread or across a join.
pub fn plan_build_count() -> usize {
    PLAN_BUILDS.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// SolveRequest
// ---------------------------------------------------------------------------

/// A backend-independent description of one triangular solve.
///
/// Built with the fluent constructors ([`SolveRequest::lower`] /
/// [`SolveRequest::upper`] plus `.transposed()`, `.unit_diagonal()`,
/// `.side(..)`, `.threads(..)`, `.algorithm(..)`, `.with_residual()`), then
/// either lowered explicitly (`plan_dense` / `plan_sparse` /
/// `plan_distributed`) or solved in one shot (`solve_dense` /
/// `solve_sparse` / `solve_distributed` and the `_vec` forms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRequest {
    opts: SolveOpts,
    threads: Option<usize>,
    policy: Option<SchedulePolicy>,
    reuse: Option<usize>,
    algorithm: Option<Algorithm>,
    residual: bool,
    cost_rev: CostModelRev,
}

impl SolveRequest {
    /// A request for `op(A)·X = B` with `A` occupying the given triangle.
    pub fn new(triangle: Triangle) -> SolveRequest {
        SolveRequest {
            opts: SolveOpts::new(triangle),
            threads: None,
            policy: None,
            reuse: None,
            algorithm: None,
            residual: false,
            cost_rev: CostModelRev::default(),
        }
    }

    /// `A·X = B` with lower-triangular `A` (the paper's main case).
    pub fn lower() -> SolveRequest {
        SolveRequest::new(Triangle::Lower)
    }

    /// `A·X = B` with upper-triangular `A`.
    pub fn upper() -> SolveRequest {
        SolveRequest::new(Triangle::Upper)
    }

    /// Apply the operand transposed: solve `Aᵀ·X = B` (`X·Aᵀ = B` on the
    /// right).  No backend materializes the full transpose: dense kernels
    /// pack `NB`-wide panels, the sparse executor runs on the cached
    /// O(nnz) [`SparseTri::transposed`], and the distributed path performs
    /// one transpose redistribution (a keyed all-to-all).
    pub fn transposed(mut self) -> SolveRequest {
        self.opts.transpose = Transpose::Yes;
        self
    }

    /// Set the transpose flag explicitly.
    pub fn transpose(mut self, transpose: Transpose) -> SolveRequest {
        self.opts.transpose = transpose;
        self
    }

    /// Treat the diagonal as implicit ones.
    pub fn unit_diagonal(mut self) -> SolveRequest {
        self.opts.diag = Diag::Unit;
        self
    }

    /// Set the diagonal kind explicitly.
    pub fn diag(mut self, diag: Diag) -> SolveRequest {
        self.opts.diag = diag;
        self
    }

    /// Put the triangular operand on the given side (dense backend only;
    /// sparse and distributed solves are left-sided).
    pub fn side(mut self, side: Side) -> SolveRequest {
        self.opts.side = side;
        self
    }

    /// Pin the worker budget of the sparse executor (bypassing its
    /// `PAR_MIN_WORK` gate).  The barriered policies stay bitwise
    /// identical for every value; the sync-free policy is bitwise
    /// reproducible only per *fixed* worker count.  Dense GEMM threading
    /// remains governed by `DENSE_THREADS`.
    pub fn threads(mut self, threads: usize) -> SolveRequest {
        self.threads = Some(threads);
        self
    }

    /// Pin the sparse scheduling policy ([`SchedulePolicy::Level`] —
    /// barrier-per-level sweeps — [`SchedulePolicy::Merged`] — the
    /// DAG-partitioned super-level executor with point-to-point readiness
    /// — or [`SchedulePolicy::SyncFree`] — the analysis-free CSC column
    /// sweep with zero barriers).  Without a pin, `SchedulePolicy::auto`
    /// chooses from the cached level-shape statistics and the declared
    /// [`SolveRequest::reuse`] at planning time; the resolved choice and
    /// its predicted barrier count are recorded on the [`Plan`].  The two
    /// barriered policies are bitwise identical to each other; sync-free
    /// matches them to rounding (~1e-12), bitwise only per fixed worker
    /// count.
    pub fn policy(mut self, policy: SchedulePolicy) -> SolveRequest {
        self.policy = Some(policy);
        self
    }

    /// Declare how many times this triangular factor will be applied
    /// (sparse backend only).  One analysis pays for `reuse` solves: a
    /// one-shot solve (`reuse(1)`) steers `SchedulePolicy::auto` to the
    /// analysis-free sync-free executor and prices the plan's cost with
    /// the analysis term amortized over one apply, while a large reuse
    /// keeps the barriered schedules, whose analysis amortizes away.
    /// Without a declaration the request keeps the historical many-apply
    /// behavior.  Ignored when [`SolveRequest::policy`] pins a policy.
    pub fn reuse(mut self, reuse: usize) -> SolveRequest {
        self.reuse = Some(reuse);
        self
    }

    /// Pin the distributed algorithm.  [`Algorithm::Auto`] (or not calling
    /// this at all) lets the Section VIII planner choose.
    pub fn algorithm(mut self, algorithm: Algorithm) -> SolveRequest {
        self.algorithm = match algorithm {
            Algorithm::Auto => None,
            other => Some(other),
        };
        self
    }

    /// Select the cost-model revision the distributed planner prices and
    /// classifies with: [`CostModelRev::Ipdps17`] (the default — the
    /// paper's original leading-order bounds) or [`CostModelRev::Tang24`]
    /// (the reexamination's corrected recursive bandwidth terms, which
    /// move the regime boundaries and hence where `Algorithm::Auto` places
    /// the processor grid).  Dense and sparse lowering ignore it.
    pub fn cost_model(mut self, rev: CostModelRev) -> SolveRequest {
        self.cost_rev = rev;
        self
    }

    /// Run a pre-solve numerical-health scan on the dense backends: NaN or
    /// infinite entries in the operand triangle or the right-hand side are
    /// rejected with `DenseError::NonFiniteEntry` before any arithmetic
    /// runs.  (Sparse operands are validated unconditionally at
    /// construction, so the flag is a no-op there; distributed solves
    /// replicate their inputs from already-validated local data.)
    pub fn validate_finite(mut self) -> SolveRequest {
        self.opts.check_finite = true;
        self
    }

    /// Set the dense NaN/Inf pre-scan flag explicitly.
    pub fn check_finite(mut self, on: bool) -> SolveRequest {
        self.opts.check_finite = on;
        self
    }

    /// Also compute the relative residual
    /// `‖op(A)·X − B‖_F / (‖A‖_F·‖X‖_F + ‖B‖_F)` after the solve and
    /// attach it to the report (skipped by the `_in_place` executors,
    /// which consume `B`).
    pub fn with_residual(mut self) -> SolveRequest {
        self.residual = true;
        self
    }

    /// The dense-kernel option record this request describes.
    pub fn opts(&self) -> SolveOpts {
        self.opts
    }

    /// The pinned sparse worker budget, if [`SolveRequest::threads`] set
    /// one.  (Accessor for plan-cache keying: two requests lower to
    /// interchangeable plans only when their pins agree.)
    pub fn pinned_threads(&self) -> Option<usize> {
        self.threads
    }

    /// The pinned sparse scheduling policy, if [`SolveRequest::policy`]
    /// set one.
    pub fn pinned_policy(&self) -> Option<SchedulePolicy> {
        self.policy
    }

    /// The declared apply count, if [`SolveRequest::reuse`] set one.
    pub fn declared_reuse(&self) -> Option<usize> {
        self.reuse
    }

    /// The pinned distributed algorithm, if [`SolveRequest::algorithm`]
    /// set one (`Algorithm::Auto` is stored as `None`).
    pub fn pinned_algorithm(&self) -> Option<Algorithm> {
        self.algorithm
    }

    /// Whether [`SolveRequest::with_residual`] asked for a post-solve
    /// residual.
    pub fn wants_residual(&self) -> bool {
        self.residual
    }

    /// The cost-model revision [`SolveRequest::cost_model`] selected
    /// (defaults to [`CostModelRev::Ipdps17`]).
    pub fn cost_model_rev(&self) -> CostModelRev {
        self.cost_rev
    }

    // -- lowering ----------------------------------------------------------

    /// Lower to a dense-backend plan for an `n×n` operand and `k`
    /// right-hand sides (`k` counts columns of `B` for left solves, rows
    /// for right solves).
    pub fn plan_dense(&self, n: usize, k: usize) -> Result<Plan> {
        let _span = obs::span_with("planner", "plan_dense", "n", n as u64);
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(Plan {
            n,
            k,
            opts: self.opts,
            threads: self.threads,
            policy: self.policy,
            reuse: self.reuse,
            residual: self.residual,
            predicted_flops: trsm_flops(n, k),
            predicted_cost: None,
            regime: None,
            backend: PlanBackend::Dense {
                threads: dense::dense_threads(),
                block: dense::TRSM_BLOCK,
            },
        })
    }

    /// Lower to a sparse-backend plan for the given matrix and `k`
    /// right-hand sides.
    ///
    /// The request's triangle and diagonal must match the matrix (the
    /// sparse storage carries both); the plan records the worker count the
    /// executor will actually use and — when it parallelizes — the shape
    /// of the level schedule it will sweep.
    pub fn plan_sparse(&self, a: &SparseTri, k: usize) -> Result<Plan> {
        let _span = obs::span_with("planner", "plan_sparse", "n", a.n() as u64);
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        if self.opts.side == Side::Right {
            return Err(config_error(
                "plan_sparse",
                "sparse solves are left-sided (op(A)·X = B)",
            ));
        }
        if a.triangle() != self.opts.triangle {
            return Err(config_error(
                "plan_sparse",
                format!(
                    "request says {:?} but the matrix stores {:?}",
                    self.opts.triangle,
                    a.triangle()
                ),
            ));
        }
        if a.diag() != self.opts.diag {
            return Err(config_error(
                "plan_sparse",
                format!(
                    "request says {:?} but the matrix was built {:?}",
                    self.opts.diag,
                    a.diag()
                ),
            ));
        }
        let sopts = self.sparse_opts();
        let shape = a.execution_shape(&sopts, k);
        let nnz = a.nnz() as f64;
        let kf = k as f64;
        // The synchronization term prices the barriers this plan will
        // actually cross — super-levels under the merged policy, levels
        // under the pure level schedule, none under sync-free.  A declared
        // reuse additionally amortizes the resolved policy's analysis bill
        // (~nnz flops for the level pass, ~2·nnz for level + merge, zero
        // for sync-free, whose per-apply handshakes bill nnz·k sync words
        // instead) over that many applies.
        let predicted_cost = Some(match self.reuse {
            None => {
                costmodel::sparse_solve_cost(nnz, kf, shape.barriers as f64, shape.workers as f64)
            }
            Some(r) => {
                let (analysis_flops, sync_words) = match shape.policy {
                    SchedulePolicy::SyncFree => (0.0, nnz * kf),
                    // A sequential sweep never analyzes the pattern.
                    _ if shape.levels == 0 => (0.0, 0.0),
                    SchedulePolicy::Level => (nnz, 0.0),
                    SchedulePolicy::Merged => (2.0 * nnz, 0.0),
                };
                costmodel::sparse_solve_cost_amortized(
                    nnz,
                    kf,
                    shape.barriers as f64,
                    shape.workers as f64,
                    analysis_flops,
                    sync_words,
                    r as f64,
                )
            }
        });
        Ok(Plan {
            n: a.n(),
            k,
            opts: self.opts,
            threads: self.threads,
            policy: self.policy,
            reuse: self.reuse,
            residual: self.residual,
            predicted_flops: a.solve_flops(k),
            predicted_cost,
            regime: None,
            backend: PlanBackend::Sparse {
                workers: shape.workers,
                policy: shape.policy,
                levels: shape.levels,
                super_levels: shape.super_levels,
                predicted_barriers: shape.barriers,
                max_level_width: shape.max_level_width,
                nnz: a.nnz(),
                via_transpose: sopts.transpose == Transpose::Yes,
            },
        })
    }

    /// Lower to a distributed-backend plan for an `n×n` operand, `k`
    /// right-hand sides and `p` simulated processors.
    ///
    /// With no algorithm pin this is where `Auto` resolves: the Section
    /// VIII cost model classifies `(n, k, p)` into its regime and the
    /// [`crate::planner`] turns the real-valued optimum into a feasible
    /// `p1 × p1 × p2` grid and block size — all recorded on the plan, so
    /// the choice is inspectable before (and after) execution.
    pub fn plan_distributed(&self, n: usize, k: usize, p: usize) -> Result<Plan> {
        let _span = obs::span_with("planner", "plan_distributed", "n", n as u64);
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        if self.opts.side == Side::Right {
            return Err(config_error(
                "plan_distributed",
                "distributed solves are left-sided (op(A)·X = B)",
            ));
        }
        let (algorithm, params, kind) = match self.algorithm {
            None => {
                let params = planner::plan_rev(self.cost_rev, n, k, p);
                (
                    Algorithm::IterativeInversion(params.it_inv),
                    Some(params),
                    AlgorithmKind::IterativeInversion,
                )
            }
            Some(Algorithm::Auto) => unreachable!("Auto is stored as None"),
            Some(alg @ Algorithm::IterativeInversion(_)) => {
                (alg, None, AlgorithmKind::IterativeInversion)
            }
            Some(alg @ Algorithm::Recursive { .. }) => (alg, None, AlgorithmKind::Recursive),
            Some(alg @ Algorithm::Wavefront) => (alg, None, AlgorithmKind::Wavefront),
        };
        let predicted =
            costmodel::predict_trsm_cost_rev(self.cost_rev, kind, n as f64, k as f64, p as f64);
        Ok(Plan {
            n,
            k,
            opts: self.opts,
            threads: self.threads,
            policy: self.policy,
            reuse: self.reuse,
            residual: self.residual,
            predicted_flops: FlopCount::new(predicted.flops.round() as u64),
            predicted_cost: Some(predicted),
            regime: Some(costmodel::classify_rev(
                self.cost_rev,
                n as f64,
                k as f64,
                p as f64,
            )),
            backend: PlanBackend::Distributed {
                algorithm,
                p,
                params,
            },
        })
    }

    // -- one-shot conveniences --------------------------------------------

    /// Plan and execute a dense solve of `op(A)·X = B` (or `X·op(A) = B`).
    pub fn solve_dense(&self, a: &Matrix, b: &Matrix) -> Result<Solution<Matrix>> {
        let k = match self.opts.side {
            Side::Left => b.cols(),
            Side::Right => b.rows(),
        };
        self.plan_dense(a.rows(), k)?.execute_dense(a, b)
    }

    /// Plan and execute a dense single-RHS solve of `op(A)·x = b`.
    pub fn solve_dense_vec(&self, a: &Matrix, b: &[f64]) -> Result<Solution<Vec<f64>>> {
        self.plan_dense(a.rows(), 1)?.execute_dense_vec(a, b)
    }

    /// Plan and execute a sparse multi-RHS solve of `op(A)·X = B`.
    pub fn solve_sparse(&self, a: &SparseTri, b: &Matrix) -> Result<Solution<Matrix>> {
        self.plan_sparse(a, b.cols())?.execute_sparse(a, b)
    }

    /// Plan and execute a sparse single-RHS solve of `op(A)·x = b`.
    pub fn solve_sparse_vec(&self, a: &SparseTri, b: &[f64]) -> Result<Solution<Vec<f64>>> {
        self.plan_sparse(a, 1)?.execute_sparse_vec(a, b)
    }

    /// Plan and execute a distributed solve of `op(A)·X = B` on the
    /// simulated machine `l` and `b` live on.
    pub fn solve_distributed(
        &self,
        l: &DistMatrix,
        b: &DistMatrix,
    ) -> Result<Solution<DistMatrix>> {
        self.plan_distributed(l.rows(), b.cols(), l.grid().comm().size())?
            .execute_distributed(l, b)
    }

    /// The sparse execution options this request lowers to.
    fn sparse_opts(&self) -> sparse::SolveOpts {
        let mut o = sparse::SolveOpts::new().transpose(self.opts.transpose);
        if let Some(t) = self.threads {
            o = o.threads(t);
        }
        if let Some(p) = self.policy {
            o = o.policy(p);
        }
        if let Some(r) = self.reuse {
            o = o.reuse(r);
        }
        o
    }
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// Backend-specific part of a [`Plan`]: the chosen algorithm and its
/// concrete parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanBackend {
    /// Local dense blocked substitution + GEMM updates.
    Dense {
        /// `DENSE_THREADS` worker-pool size the GEMM updates may use.
        threads: usize,
        /// Panel width of the blocked substitution.
        block: usize,
    },
    /// Level-scheduled / DAG-partitioned / sync-free sparse executor.
    Sparse {
        /// Workers the executor will run with (1 = sequential sweep, which
        /// needs no analysis).
        workers: usize,
        /// The resolved scheduling policy (a pinned request, or
        /// `SchedulePolicy::auto`'s choice from the level-shape
        /// statistics and the declared reuse).
        policy: SchedulePolicy,
        /// Dependency levels of the schedule (0 when the solve stays
        /// sequential or runs sync-free and the pattern is never
        /// analyzed).
        levels: usize,
        /// Super-levels of the merged schedule (0 unless the merged policy
        /// runs).
        super_levels: usize,
        /// Barriers the executor will cross: `levels` under the level
        /// policy, `super_levels` under the merged one, 0 under the
        /// sync-free column sweep.
        predicted_barriers: usize,
        /// Rows in the widest level (the level executor's parallelism
        /// ceiling).
        max_level_width: usize,
        /// Stored entries of the matrix.
        nnz: usize,
        /// Whether the executor runs on the cached transpose.
        via_transpose: bool,
    },
    /// Distributed algorithm on the simulated machine.
    Distributed {
        /// The resolved algorithm (never [`Algorithm::Auto`]).
        algorithm: Algorithm,
        /// Number of simulated processors.
        p: usize,
        /// The planner's full parameter selection when `Auto` resolved it.
        params: Option<planner::Plan>,
    },
}

/// An inspectable, executable lowering of a [`SolveRequest`]: the chosen
/// algorithm, its parameters, and the predicted cost — *before* anything
/// runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Operand dimension.
    pub n: usize,
    /// Number of right-hand sides.
    pub k: usize,
    /// The solve options (side, triangle, transpose, diagonal).
    pub opts: SolveOpts,
    /// Backend-specific algorithm choice and parameters.
    pub backend: PlanBackend,
    /// Predicted flop count (the `γ·F` term).
    pub predicted_flops: FlopCount,
    /// Predicted α–β–γ critical-path cost (distributed plans, and sparse
    /// plans — whose latency term counts the barriers the resolved policy
    /// will cross, via `costmodel::sparse_solve_cost`; with a declared
    /// [`SolveRequest::reuse`], via
    /// `costmodel::sparse_solve_cost_amortized`, which adds the resolved
    /// policy's analysis bill amortized over that many applies).
    pub predicted_cost: Option<Cost>,
    /// The Section VIII regime (distributed plans only).
    pub regime: Option<Regime>,
    threads: Option<usize>,
    policy: Option<SchedulePolicy>,
    reuse: Option<usize>,
    residual: bool,
}

impl Plan {
    /// Human-readable name of the algorithm this plan executes.
    pub fn algorithm_name(&self) -> &'static str {
        match &self.backend {
            PlanBackend::Dense { .. } => "dense blocked substitution",
            PlanBackend::Sparse {
                policy: SchedulePolicy::SyncFree,
                ..
            } => "sparse sync-free column sweep",
            PlanBackend::Sparse {
                workers, policy, ..
            } if *workers > 1 => match policy {
                SchedulePolicy::Level => "sparse level-scheduled parallel sweep",
                SchedulePolicy::Merged => "sparse DAG-partitioned parallel sweep",
                SchedulePolicy::SyncFree => unreachable!("matched above"),
            },
            PlanBackend::Sparse { .. } => "sparse sequential sweep",
            PlanBackend::Distributed { algorithm, .. } => match algorithm {
                Algorithm::Auto => "auto",
                Algorithm::Recursive { .. } => "recursive",
                Algorithm::IterativeInversion(_) => "iterative inversion-based",
                Algorithm::Wavefront => "wavefront",
            },
        }
    }

    /// The sparse execution options this plan runs with.
    fn sparse_opts(&self) -> sparse::SolveOpts {
        let mut o = sparse::SolveOpts::new().transpose(self.opts.transpose);
        if let Some(t) = self.threads {
            o = o.threads(t);
        }
        if let Some(p) = self.policy {
            o = o.policy(p);
        }
        if let Some(r) = self.reuse {
            o = o.reuse(r);
        }
        o
    }

    /// A plan is only valid for operands shaped like the one it was
    /// lowered against; executing it on a different matrix would silently
    /// invalidate everything the plan recorded.
    fn check_dense_operand(&self, a: &Matrix) -> Result<()> {
        if a.rows() != self.n || a.cols() != self.n {
            return Err(config_error(
                "plan",
                format!(
                    "planned for an {0}×{0} operand, got {1}×{2}",
                    self.n,
                    a.rows(),
                    a.cols()
                ),
            ));
        }
        Ok(())
    }

    /// See [`Plan::check_dense_operand`]: the sparse plan additionally
    /// recorded the matrix's triangle and diagonal kind, which the request
    /// was validated against at planning time.
    fn check_sparse_operand(&self, a: &SparseTri) -> Result<()> {
        if a.n() != self.n || a.triangle() != self.opts.triangle || a.diag() != self.opts.diag {
            return Err(config_error(
                "plan",
                format!(
                    "planned for an n = {} {:?} {:?} matrix, got n = {} {:?} {:?}",
                    self.n,
                    self.opts.triangle,
                    self.opts.diag,
                    a.n(),
                    a.triangle(),
                    a.diag()
                ),
            ));
        }
        Ok(())
    }

    fn report(&self, algorithm: &'static str, flops: FlopCount) -> SolveReport {
        SolveReport {
            algorithm,
            flops,
            comm: None,
            phases: None,
            levels: None,
            residual: None,
            trace: None,
        }
    }

    // -- dense -------------------------------------------------------------

    /// Execute this dense plan, returning the solution and report.
    pub fn execute_dense(&self, a: &Matrix, b: &Matrix) -> Result<Solution<Matrix>> {
        let mut x = b.clone();
        let mut report = self.execute_dense_in_place(a, &mut x)?;
        if self.residual {
            report.residual = Some(dense_residual(&self.opts, a, &x, b)?);
        }
        Ok(Solution { x, report })
    }

    /// Execute this dense plan in place: `b` holds `B` on entry and `X` on
    /// exit.  (The residual option is skipped: `B` is consumed.)
    pub fn execute_dense_in_place(&self, a: &Matrix, b: &mut Matrix) -> Result<SolveReport> {
        let PlanBackend::Dense { .. } = self.backend else {
            return Err(config_error("plan", "not a dense plan"));
        };
        self.check_dense_operand(a)?;
        let mark = obs::enabled().then(obs::mark);
        let flops = {
            let _span = obs::span_with("core", "execute", "n", self.n as u64);
            dense::trsm_in_place_opts(&self.opts, a, b)?
        };
        let mut report = self.report("dense blocked substitution", flops);
        attach_trace(&mut report, mark);
        Ok(report)
    }

    /// Execute this dense plan for one right-hand-side vector.
    pub fn execute_dense_vec(&self, a: &Matrix, b: &[f64]) -> Result<Solution<Vec<f64>>> {
        let mut x = b.to_vec();
        let mut report = self.execute_dense_vec_in_place(a, &mut x)?;
        if self.residual {
            let xm = Matrix::from_vec(x.len(), 1, x.clone())?;
            let bm = Matrix::from_vec(b.len(), 1, b.to_vec())?;
            report.residual = Some(dense_residual(&self.opts, a, &xm, &bm)?);
        }
        Ok(Solution { x, report })
    }

    /// Execute this dense plan for one right-hand side in place,
    /// allocating nothing.
    pub fn execute_dense_vec_in_place(&self, a: &Matrix, x: &mut [f64]) -> Result<SolveReport> {
        let PlanBackend::Dense { .. } = self.backend else {
            return Err(config_error("plan", "not a dense plan"));
        };
        self.check_dense_operand(a)?;
        let mark = obs::enabled().then(obs::mark);
        let flops = {
            let _span = obs::span_with("core", "execute", "n", self.n as u64);
            dense::trsv_in_place_opts(&self.opts, a, x)?
        };
        let mut report = self.report("dense substitution (single RHS)", flops);
        attach_trace(&mut report, mark);
        Ok(report)
    }

    // -- sparse ------------------------------------------------------------

    /// Execute this sparse plan for a block of right-hand sides.
    pub fn execute_sparse(&self, a: &SparseTri, b: &Matrix) -> Result<Solution<Matrix>> {
        let mut x = b.clone();
        let mut report = self.execute_sparse_in_place(a, &mut x)?;
        if self.residual {
            report.residual = Some(sparse_residual(a.executor(self.opts.transpose), &x, b));
        }
        Ok(Solution { x, report })
    }

    /// Execute this sparse plan in place: `x` holds `B` on entry and `X`
    /// on exit.  (The residual option is skipped: `B` is consumed.)
    pub fn execute_sparse_in_place(&self, a: &SparseTri, x: &mut Matrix) -> Result<SolveReport> {
        let PlanBackend::Sparse { .. } = self.backend else {
            return Err(config_error("plan", "not a sparse plan"));
        };
        self.check_sparse_operand(a)?;
        let sopts = self.sparse_opts();
        let k = x.cols();
        let mark = obs::enabled().then(obs::mark);
        let flops = {
            let _span = obs::span_with("core", "execute", "n", self.n as u64);
            a.solve_multi_with(&sopts, x)?
        };
        let mut report = self.report(self.algorithm_name(), flops);
        report.levels = Some(self.level_report(a, k));
        attach_trace(&mut report, mark);
        Ok(report)
    }

    /// Execute this sparse plan into a caller-owned output buffer: `x` is
    /// overwritten with a copy of `b` (reusing its allocation when the
    /// shapes already match) and solved in place.
    ///
    /// This is the shared-plan steady-state path: the plan and the operand
    /// are only ever *borrowed* (callers typically hold them behind
    /// `Arc<Plan>` / `Arc<SparseTri>`, both `Send + Sync`), nothing is
    /// cloned, and when `x` is a reused arena of the right shape nothing
    /// is allocated either — the one copy is `B` into `x`.
    pub fn execute_sparse_into(
        &self,
        a: &SparseTri,
        b: &Matrix,
        x: &mut Matrix,
    ) -> Result<SolveReport> {
        if x.dims() == b.dims() {
            x.as_mut_slice().copy_from_slice(b.as_slice());
        } else {
            *x = b.clone();
        }
        self.execute_sparse_in_place(a, x)
    }

    /// Dense counterpart of [`Plan::execute_sparse_into`]: copy `b` into
    /// the caller-owned `x` (reusing its allocation when shapes match) and
    /// solve in place without cloning the operand.
    pub fn execute_dense_into(
        &self,
        a: &Matrix,
        b: &Matrix,
        x: &mut Matrix,
    ) -> Result<SolveReport> {
        if x.dims() == b.dims() {
            x.as_mut_slice().copy_from_slice(b.as_slice());
        } else {
            *x = b.clone();
        }
        self.execute_dense_in_place(a, x)
    }

    /// Execute this sparse plan for one right-hand-side vector.
    pub fn execute_sparse_vec(&self, a: &SparseTri, b: &[f64]) -> Result<Solution<Vec<f64>>> {
        let mut x = b.to_vec();
        let mut report = self.execute_sparse_vec_in_place(a, &mut x)?;
        if self.residual {
            let xm = Matrix::from_vec(x.len(), 1, x.clone())?;
            let bm = Matrix::from_vec(b.len(), 1, b.to_vec())?;
            report.residual = Some(sparse_residual(a.executor(self.opts.transpose), &xm, &bm));
        }
        Ok(Solution { x, report })
    }

    /// Execute this sparse plan for one right-hand side in place,
    /// allocating nothing beyond the (cached) analysis.
    pub fn execute_sparse_vec_in_place(&self, a: &SparseTri, x: &mut [f64]) -> Result<SolveReport> {
        let PlanBackend::Sparse { .. } = self.backend else {
            return Err(config_error("plan", "not a sparse plan"));
        };
        self.check_sparse_operand(a)?;
        let sopts = self.sparse_opts();
        let mark = obs::enabled().then(obs::mark);
        let flops = {
            let _span = obs::span_with("core", "execute", "n", self.n as u64);
            a.solve_with(&sopts, x)?
        };
        let mut report = self.report(self.algorithm_name(), flops);
        report.levels = Some(self.level_report(a, 1));
        attach_trace(&mut report, mark);
        Ok(report)
    }

    /// Measured level/barrier shape of a sparse execution: the same
    /// worker/policy decision the executor makes, so the report matches
    /// what ran — including the barriers actually waited (one per level
    /// under the level policy, one per super-level under the merged one).
    fn level_report(&self, a: &SparseTri, k: usize) -> LevelReport {
        let shape = a.execution_shape(&self.sparse_opts(), k);
        LevelReport {
            workers: shape.workers,
            policy: shape.policy,
            levels: shape.levels,
            super_levels: shape.super_levels,
            barriers: shape.barriers,
        }
    }

    // -- distributed -------------------------------------------------------

    /// Execute this distributed plan on the simulated machine `l` and `b`
    /// live on, returning `X` in `b`'s layout.
    ///
    /// The report carries this rank's communication-counter delta for the
    /// whole solve, the per-phase breakdown when the iterative
    /// inversion-based algorithm ran, and the measured flops — every
    /// algorithm feeds the same report shape.
    pub fn execute_distributed(
        &self,
        l: &DistMatrix,
        b: &DistMatrix,
    ) -> Result<Solution<DistMatrix>> {
        let PlanBackend::Distributed { algorithm, .. } = &self.backend else {
            return Err(config_error("plan", "not a distributed plan"));
        };
        if l.rows() != self.n || l.cols() != self.n {
            return Err(config_error(
                "plan",
                format!(
                    "planned for an {0}×{0} operand, got {1}×{2}",
                    self.n,
                    l.rows(),
                    l.cols()
                ),
            ));
        }
        let comm = l.grid().comm();
        let mark = obs::enabled().then(obs::mark);
        let before = comm.counters();
        let span = obs::span_with("core", "execute", "n", self.n as u64);

        // Apply op(A): the *cached* transpose if requested (one keyed
        // all-to-all on the first transposed solve of this matrix, reused
        // by every subsequent one — so the Cholesky/LU apps' repeated
        // backward substitutions redistribute once, not per solve), then
        // the *cached* implicit-unit diagonal overlay if requested (a
        // purely local copy, built once per matrix and invalidated with
        // the transpose cache by mutators).
        let op_a = match self.opts.transpose {
            Transpose::No => l,
            Transpose::Yes => l.try_transposed()?,
        };
        let solve_mat = match self.opts.diag {
            Diag::NonUnit => op_a,
            Diag::Unit => op_a.unit_diagonal(),
        };

        // Solve: effective-lower directly, effective-upper via the reversal
        // permutation (J·U·J is lower triangular).
        let (x, phases) = match self.opts.op_triangle() {
            Triangle::Lower => run_lower(solve_mat, b, *algorithm)?,
            Triangle::Upper => {
                let l_rev = reverse_both(solve_mat)?;
                let b_rev = reverse_rows(b)?;
                let (x_rev, phases) = run_lower(&l_rev, &b_rev, *algorithm)?;
                (reverse_rows(&x_rev)?, phases)
            }
        };
        drop(span);
        let delta = comm.counters().since(&before);

        let mut report = self.report(self.algorithm_name(), FlopCount::new(delta.flops));
        report.comm = Some(delta);
        report.phases = phases;
        attach_trace(&mut report, mark);
        if self.residual {
            // Residual verification communicates; it runs outside the
            // measured window on the op-applied matrix.
            report.residual = Some(verify::residual(solve_mat, &x, b)?);
        }
        Ok(Solution { x, report })
    }

    // -- cost drift --------------------------------------------------------

    /// Line up this plan's *predicted* α–β–γ cost against what `report`
    /// measured, priced on `machine`.
    ///
    /// Every backend contributes a total row.  Distributed reports measure
    /// messages, words and flops from this rank's communication-counter
    /// delta, with the virtual-clock advance attached as the measured time
    /// — so predicted and measured times are in the same model seconds
    /// whenever `machine` matches the simulated `MachineParams`.  Sparse
    /// reports measure the barriers actually crossed and each worker's
    /// flop share; dense reports measure flops only.  Iterative
    /// inversion-based solves additionally contribute one row per Section
    /// VII phase (inversion / solve / update), with the per-phase formulas
    /// of `costmodel::itinv` on the predicted side.
    pub fn drift_report(
        &self,
        report: &SolveReport,
        machine: costmodel::Machine,
    ) -> costmodel::DriftReport {
        let mut out = costmodel::DriftReport::new(machine);
        let predicted = self.predicted_cost.unwrap_or(Cost {
            latency: 0.0,
            bandwidth: 0.0,
            flops: self.predicted_flops.get() as f64,
        });
        match &self.backend {
            PlanBackend::Dense { .. } => {
                out.push(costmodel::DriftRow::new(
                    self.algorithm_name(),
                    predicted,
                    Cost::new(0.0, 0.0, report.flops.get() as f64),
                ));
            }
            PlanBackend::Sparse { workers, .. } => {
                let (barriers, w) = report.levels.map_or((0.0, *workers as f64), |lr| {
                    (lr.barriers as f64, lr.workers as f64)
                });
                let w = w.max(1.0);
                let measured = Cost::new(
                    barriers * costmodel::cost::log2c(w),
                    barriers * self.k as f64,
                    report.flops.get() as f64 / w,
                );
                out.push(costmodel::DriftRow::new(
                    self.algorithm_name(),
                    predicted,
                    measured,
                ));
            }
            PlanBackend::Distributed { algorithm, .. } => {
                let mut row = costmodel::DriftRow::new(
                    self.algorithm_name(),
                    predicted,
                    report.comm.as_ref().map_or(Cost::ZERO, counters_cost),
                );
                if let Some(c) = report.comm {
                    row = row.with_seconds(c.time);
                }
                out.push(row);
                if let (Algorithm::IterativeInversion(cfg), Some(ph)) = (algorithm, &report.phases)
                {
                    let (n, k) = (self.n as f64, self.k as f64);
                    let (p1, p2, n0) = (cfg.p1 as f64, cfg.p2 as f64, cfg.n0 as f64);
                    // The inversion sub-grids are r1 × r1 × r2 with
                    // r1²·r2 = p·n0/n (Section VII-A); derive a feasible
                    // shape the same way the tuned planner does.
                    let q = (p1 * p1 * p2 * n0 / n).max(1.0);
                    let r1 = q.sqrt().floor().max(1.0);
                    let r2 = (q / (r1 * r1)).max(1.0);
                    for (name, pred, meas) in [
                        (
                            "itinv: inversion",
                            costmodel::itinv::inversion_phase(n, n0, r1, r2),
                            &ph.inversion,
                        ),
                        (
                            "itinv: solve",
                            costmodel::itinv::solve_phase(n, k, n0, p1, p2),
                            &ph.solve,
                        ),
                        (
                            "itinv: update",
                            costmodel::itinv::update_phase(n, k, n0, p1, p2),
                            &ph.update,
                        ),
                    ] {
                        out.push(
                            costmodel::DriftRow::new(name, pred, counters_cost(meas))
                                .with_seconds(meas.time),
                        );
                    }
                }
            }
        }
        out
    }
}

// Shared-plan audit: one lowered plan serves concurrent requests — the
// `serve` crate hands the same `Arc<Plan>` to every thread that hits its
// cache — so the plan and everything it embeds must be `Send + Sync`.
// Asserted at compile time here: caching a `Rc`, `Cell`, or raw pointer on
// the plan would fail this build, not a downstream crate's.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
    assert_send_sync::<SolveRequest>();
    assert_send_sync::<SolveReport>();
};

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n = {}, k = {}, {:?} {:?}{}{})",
            self.algorithm_name(),
            self.n,
            self.k,
            self.opts.triangle,
            self.opts.diag,
            if self.opts.transpose == Transpose::Yes {
                ", transposed"
            } else {
                ""
            },
            match &self.backend {
                PlanBackend::Dense { threads, block } =>
                    format!(", NB = {block}, {threads} worker(s)"),
                PlanBackend::Sparse {
                    workers,
                    levels,
                    predicted_barriers,
                    nnz,
                    ..
                } => format!(
                    ", nnz = {nnz}, {workers} worker(s), {levels} level(s), \
                     {predicted_barriers} barrier(s)"
                ),
                PlanBackend::Distributed { algorithm, p, .. } =>
                    format!(", p = {p}, {algorithm:?}"),
            }
        )
    }
}

// ---------------------------------------------------------------------------
// Solution & SolveReport
// ---------------------------------------------------------------------------

/// The outcome of executing a [`Plan`]: the solution `X` plus the uniform
/// measured report.
#[derive(Debug, Clone)]
pub struct Solution<X> {
    /// The solution of `op(A)·X = B` (or `X·op(A) = B`).
    pub x: X,
    /// What the execution measured.
    pub report: SolveReport,
}

/// Level/barrier shape of a sparse execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelReport {
    /// Workers the executor ran with.
    pub workers: usize,
    /// The scheduling policy that ran (nominally
    /// [`SchedulePolicy::Level`] for the sequential sweep).
    pub policy: SchedulePolicy,
    /// Dependency levels of the schedule (0 for the analysis-free
    /// sequential and sync-free sweeps).
    pub levels: usize,
    /// Super-levels of the merged schedule (0 unless the merged policy
    /// ran).
    pub super_levels: usize,
    /// Barriers each worker actually waited on: one per level under the
    /// level policy, one per *super-level* under the merged policy — the
    /// headline the DAG-partitioned schedule moves on deep narrow DAGs —
    /// and **zero** under the sync-free column sweep, whose workers
    /// coordinate only through per-row atomic counters.
    pub barriers: usize,
}

/// The uniform measured report every backend fills.
///
/// The dense backend reports the substitution [`FlopCount`]; the sparse
/// backend additionally reports its [`LevelReport`]; the distributed
/// backend reports this rank's communication-counter delta and — for the
/// iterative inversion-based algorithm — the Section VII per-phase
/// breakdown.  The residual is attached when the request asked for it.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Name of the algorithm that ran.
    pub algorithm: &'static str,
    /// Measured flops (local count, or this rank's charged flops for
    /// distributed solves).
    pub flops: FlopCount,
    /// This rank's communication counters for the solve (distributed).
    pub comm: Option<CostCounters>,
    /// Per-phase cost breakdown (iterative inversion-based solves).
    pub phases: Option<PhaseBreakdown>,
    /// Level/barrier counts (sparse).
    pub levels: Option<LevelReport>,
    /// Relative residual, when requested.
    pub residual: Option<f64>,
    /// Aggregated tracing report for this execution, attached when the
    /// [`obs`] tracing layer was enabled while the plan ran (`None`
    /// otherwise — the disabled path records nothing and allocates
    /// nothing).  The aggregation covers every event recorded machine-wide
    /// during this call's window, so under the simulated machine a rank's
    /// report may include spans recorded by concurrently executing ranks.
    pub trace: Option<obs::TraceReport>,
}

impl SolveReport {
    /// Message retransmissions this rank performed during a distributed
    /// solve under an active fault plan (0 otherwise).
    pub fn retries(&self) -> u64 {
        self.comm.map_or(0, |c| c.retries)
    }

    /// Injected message drops this rank's sends absorbed (each one costs a
    /// retry; 0 without a fault plan).
    pub fn dropped(&self) -> u64 {
        self.comm.map_or(0, |c| c.dropped)
    }

    /// Duplicate deliveries this rank injected (suppressed by receive-side
    /// dedup; 0 without a fault plan).
    pub fn duplicates(&self) -> u64 {
        self.comm.map_or(0, |c| c.duplicates)
    }

    /// Sends that exhausted the retry budget on this rank — each one also
    /// surfaced as a [`simnet::SimError::Timeout`] through the solve's
    /// `Result` (0 on a successful solve).
    pub fn timeouts(&self) -> u64 {
        self.comm.map_or(0, |c| c.timeouts)
    }

    /// Virtual seconds of local compute this rank performed *under* a
    /// posted send during a distributed solve — the communication the
    /// machine's overlap model hid.  Nonzero only when the machine ran
    /// with [`simnet::MachineParams::with_overlap`]; always 0 under the
    /// default blocking-send timing.
    pub fn overlap_seconds(&self) -> f64 {
        self.comm.as_ref().map_or(0.0, |c| c.overlap)
    }
}

// ---------------------------------------------------------------------------
// Internal helpers
// ---------------------------------------------------------------------------

/// Attach the aggregated trace recorded since `mark` (no-op when tracing
/// was off at the start of the execution).
fn attach_trace(report: &mut SolveReport, mark: Option<obs::Mark>) {
    if let Some(m) = mark {
        report.trace = Some(obs::TraceReport::from_dump(&obs::collect_since(&m)));
    }
}

/// Measured α–β–γ counts of one rank's communication-counter delta: the
/// full-duplex message maximum, the word maximum, and the charged flops.
fn counters_cost(c: &CostCounters) -> Cost {
    Cost::new(c.latency() as f64, c.bandwidth() as f64, c.flops as f64)
}

/// Run one resolved algorithm on an effective lower-triangular system.
fn run_lower(
    l: &DistMatrix,
    b: &DistMatrix,
    algorithm: Algorithm,
) -> Result<(DistMatrix, Option<PhaseBreakdown>)> {
    match algorithm {
        Algorithm::Auto => Err(config_error(
            "solve",
            "Auto must be resolved during planning",
        )),
        Algorithm::IterativeInversion(cfg) => {
            let (x, phases) = it_inv_trsm(l, b, &cfg)?;
            Ok((x, Some(phases)))
        }
        Algorithm::Recursive { base_size } => {
            let x = rec_trsm(
                l,
                b,
                &RecTrsmConfig {
                    base_size,
                    log_latency: true,
                },
            )?;
            Ok((x, None))
        }
        Algorithm::Wavefront => Ok((wavefront_trsm(l, b)?, None)),
    }
}

/// Relative residual `‖op(A)·X − B‖_F / (‖A‖_F·‖X‖_F + ‖B‖_F)` for a local
/// dense solve.
fn dense_residual(opts: &SolveOpts, a: &Matrix, x: &Matrix, b: &Matrix) -> Result<f64> {
    // The solver reads only the declared triangle (and, for Diag::Unit, an
    // implicit unit diagonal), so the residual must measure that effective
    // operand: callers may legitimately store other data in the ignored
    // triangle (e.g. a combined LU workspace).
    let mut a_eff_storage = match opts.triangle {
        Triangle::Lower => a.lower_triangular_part(),
        Triangle::Upper => a.upper_triangular_part(),
    };
    if opts.diag == Diag::Unit {
        for i in 0..a_eff_storage.rows() {
            a_eff_storage[(i, i)] = 1.0;
        }
    }
    let a_eff = &a_eff_storage;
    let mut p = Matrix::zeros(b.rows(), b.cols());
    match (opts.side, opts.transpose) {
        (Side::Left, Transpose::No) => dense::gemm(1.0, a_eff, x, 0.0, &mut p)?,
        (Side::Left, Transpose::Yes) => dense::gemm_at_b(1.0, a_eff, x, 0.0, &mut p)?,
        (Side::Right, Transpose::No) => dense::gemm(1.0, x, a_eff, 0.0, &mut p)?,
        (Side::Right, Transpose::Yes) => dense::gemm_a_bt(1.0, x, a_eff, 0.0, &mut p)?,
    };
    let diff_sq: f64 = p
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(got, want)| (got - want) * (got - want))
        .sum();
    let a_sq: f64 = a_eff.as_slice().iter().map(|v| v * v).sum();
    let x_sq: f64 = x.as_slice().iter().map(|v| v * v).sum();
    let b_sq: f64 = b.as_slice().iter().map(|v| v * v).sum();
    let denom = a_sq.sqrt() * x_sq.sqrt() + b_sq.sqrt();
    Ok(if denom == 0.0 {
        diff_sq.sqrt()
    } else {
        diff_sq.sqrt() / denom
    })
}

/// Relative residual for a sparse solve, computed against the executor
/// matrix `e` (already op-applied): `‖E·X − B‖_F / (‖E‖_F·‖X‖_F + ‖B‖_F)`.
fn sparse_residual(e: &SparseTri, x: &Matrix, b: &Matrix) -> f64 {
    let n = e.n();
    let k = x.cols();
    let mut diff_sq = 0.0;
    for i in 0..n {
        let (cols, vals) = e.row_entries(i);
        for c in 0..k {
            let mut acc = e.diag_value(i) * x[(i, c)];
            for (&j, &v) in cols.iter().zip(vals) {
                acc += v * x[(j, c)];
            }
            let d = acc - b[(i, c)];
            diff_sq += d * d;
        }
    }
    let mut e_sq: f64 = (0..n).map(|i| e.diag_value(i) * e.diag_value(i)).sum();
    for i in 0..n {
        let (_, vals) = e.row_entries(i);
        e_sq += vals.iter().map(|v| v * v).sum::<f64>();
    }
    let x_sq: f64 = x.as_slice().iter().map(|v| v * v).sum();
    let b_sq: f64 = b.as_slice().iter().map(|v| v * v).sum();
    let denom = e_sq.sqrt() * x_sq.sqrt() + b_sq.sqrt();
    if denom == 0.0 {
        diff_sq.sqrt()
    } else {
        diff_sq.sqrt() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::it_inv_trsm::ItInvConfig;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};
    use sparse::gen as sgen;

    // -- dense -------------------------------------------------------------

    #[test]
    fn dense_plan_and_execution_round_trip() {
        let n = 130;
        let k = 7;
        let l = gen::well_conditioned_lower(n, 1);
        let x_true = gen::rhs(n, k, 2);
        let b = dense::matmul(&l, &x_true);
        let req = SolveRequest::lower().with_residual();
        let plan = req.plan_dense(n, k).unwrap();
        assert!(matches!(plan.backend, PlanBackend::Dense { .. }));
        assert_eq!(plan.predicted_flops, trsm_flops(n, k));
        let sol = plan.execute_dense(&l, &b).unwrap();
        assert!(dense::norms::rel_diff(&sol.x, &x_true) < 1e-9);
        assert_eq!(sol.report.flops, trsm_flops(n, k));
        assert!(sol.report.residual.unwrap() < 1e-12);
        assert!(sol.report.comm.is_none());
        // Old entry point and new API agree bitwise.
        let old = dense::trsm(Triangle::Lower, Diag::NonUnit, &l, &b).unwrap();
        assert_eq!(old, sol.x);
    }

    #[test]
    fn dense_transposed_request_solves_lt() {
        let n = 90;
        let k = 5;
        let l = gen::well_conditioned_lower(n, 3);
        let x_true = gen::rhs(n, k, 4);
        let b = dense::gemm::matmul(&l.transpose(), &x_true);
        let sol = SolveRequest::lower()
            .transposed()
            .with_residual()
            .solve_dense(&l, &b)
            .unwrap();
        assert!(dense::norms::rel_diff(&sol.x, &x_true) < 1e-8);
        assert!(sol.report.residual.unwrap() < 1e-12);
    }

    #[test]
    fn dense_vec_and_unit_diagonal() {
        let n = 64;
        let mut l = gen::well_conditioned_lower(n, 5);
        for i in 0..n {
            l[(i, i)] = 123.0; // must be ignored under Diag::Unit
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
        let mut l_unit = l.clone();
        for i in 0..n {
            l_unit[(i, i)] = 1.0;
        }
        let xt = Matrix::from_vec(n, 1, x_true.clone()).unwrap();
        let b = dense::matmul(&l_unit, &xt).into_vec();
        let sol = SolveRequest::lower()
            .unit_diagonal()
            .with_residual()
            .solve_dense_vec(&l, &b)
            .unwrap();
        for (got, want) in sol.x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
        assert!(sol.report.residual.unwrap() < 1e-12);
    }

    #[test]
    fn plan_backend_mismatch_is_rejected() {
        let plan = SolveRequest::lower().plan_dense(8, 1).unwrap();
        let m = sgen::random_lower(8, 2, 1);
        assert!(plan.execute_sparse_vec(&m, &[1.0; 8]).is_err());
        let l = gen::well_conditioned_lower(8, 1);
        let sparse_plan = SolveRequest::lower().plan_sparse(&m, 1).unwrap();
        assert!(sparse_plan.execute_dense_vec(&l, &[1.0; 8]).is_err());
    }

    #[test]
    fn plan_rejects_operands_it_was_not_lowered_for() {
        // A sparse plan validated against a lower matrix must not silently
        // execute against an upper (or differently sized) one.
        let lower = sgen::random_lower(16, 2, 1);
        let upper = sgen::random_upper(16, 2, 2);
        let plan = SolveRequest::lower().plan_sparse(&lower, 1).unwrap();
        assert!(plan.execute_sparse_vec(&upper, &[1.0; 16]).is_err());
        let small = sgen::random_lower(8, 2, 3);
        assert!(plan.execute_sparse_vec(&small, &[1.0; 8]).is_err());
        // Same for dense plans.
        let dplan = SolveRequest::lower().plan_dense(16, 1).unwrap();
        let wrong = gen::well_conditioned_lower(8, 4);
        assert!(dplan.execute_dense_vec(&wrong, &[1.0; 8]).is_err());
    }

    #[test]
    fn dense_residual_ignores_the_opposite_triangle() {
        // A combined-workspace operand (garbage in the triangle the solver
        // never reads) must still report a tiny residual for a correct
        // solve.
        let n = 40;
        let l = gen::well_conditioned_lower(n, 9);
        let x_true = gen::rhs(n, 3, 10);
        let b = dense::matmul(&l, &x_true);
        let mut workspace = l.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                workspace[(i, j)] = 1e6; // "U" half of an LU workspace
            }
        }
        let sol = SolveRequest::lower()
            .with_residual()
            .solve_dense(&workspace, &b)
            .unwrap();
        assert!(dense::norms::rel_diff(&sol.x, &x_true) < 1e-9);
        assert!(
            sol.report.residual.unwrap() < 1e-12,
            "residual must measure the effective triangular operand, got {}",
            sol.report.residual.unwrap()
        );
    }

    // -- sparse ------------------------------------------------------------

    #[test]
    fn sparse_plan_reports_levels_and_workers() {
        let n = 50_000;
        let m = sgen::random_lower(n, 10, 7);
        let b = sgen::rhs_vec(n, 8);
        let req = SolveRequest::lower().threads(4);
        let plan = req.plan_sparse(&m, 1).unwrap();
        let PlanBackend::Sparse {
            workers,
            policy,
            levels,
            super_levels,
            predicted_barriers,
            max_level_width,
            nnz,
            via_transpose,
        } = plan.backend
        else {
            panic!("expected a sparse plan");
        };
        assert!(workers > 1, "a pinned budget of 4 must parallelize");
        assert!(levels > 0 && max_level_width > 0);
        assert_eq!(nnz, m.nnz());
        assert!(!via_transpose);
        match policy {
            SchedulePolicy::Level => {
                assert_eq!(predicted_barriers, levels);
                assert_eq!(super_levels, 0);
            }
            SchedulePolicy::Merged => assert_eq!(predicted_barriers, super_levels),
            SchedulePolicy::SyncFree => {
                panic!("an undeclared-reuse plan must keep a barriered policy")
            }
        }
        let cost = plan.predicted_cost.expect("sparse plans carry a cost");
        assert!(cost.latency > 0.0 && cost.flops > 0.0);
        let sol = plan.execute_sparse_vec(&m, &b).unwrap();
        let lr = sol.report.levels.unwrap();
        assert_eq!(lr.workers, workers);
        assert_eq!(lr.policy, policy);
        assert_eq!(lr.levels, levels);
        assert_eq!(lr.super_levels, super_levels);
        assert_eq!(lr.barriers, predicted_barriers);
        assert_eq!(sol.report.flops, m.solve_flops(1));
        // Identical to the raw executor.
        let direct = m.solve(&b).unwrap();
        assert_eq!(sol.x, direct);
    }

    #[test]
    fn sparse_policy_pins_resolve_and_report_barrier_compression() {
        // Deep narrow DAG: the merged plan must record >=10x fewer barriers
        // than the level plan has levels, both executions must agree
        // bitwise, and auto must resolve to Merged on this shape.
        let n = 40_000;
        let m = sgen::deep_narrow_lower(n, 4, 4, 3);
        let b = sgen::rhs_vec(n, 8);
        let level_plan = SolveRequest::lower()
            .threads(4)
            .policy(SchedulePolicy::Level)
            .plan_sparse(&m, 1)
            .unwrap();
        let merged_plan = SolveRequest::lower()
            .threads(4)
            .policy(SchedulePolicy::Merged)
            .plan_sparse(&m, 1)
            .unwrap();
        let PlanBackend::Sparse {
            predicted_barriers: level_barriers,
            levels,
            ..
        } = level_plan.backend
        else {
            panic!("expected a sparse plan");
        };
        let PlanBackend::Sparse {
            predicted_barriers: merged_barriers,
            policy,
            ..
        } = merged_plan.backend
        else {
            panic!("expected a sparse plan");
        };
        assert_eq!(policy, SchedulePolicy::Merged);
        assert_eq!(level_barriers, levels);
        assert!(
            merged_barriers * 10 <= level_barriers,
            "merged plan must predict >=10x fewer barriers: {merged_barriers} vs {level_barriers}"
        );
        // The cost model prices the synchronization term accordingly.
        let lc = level_plan.predicted_cost.unwrap();
        let mc = merged_plan.predicted_cost.unwrap();
        assert!(mc.latency < lc.latency / 10.0);
        assert_eq!(mc.flops, lc.flops);
        // Executions agree bitwise and report what they ran.
        let sl = level_plan.execute_sparse_vec(&m, &b).unwrap();
        let sm = merged_plan.execute_sparse_vec(&m, &b).unwrap();
        assert_eq!(sl.x, sm.x, "policies must be bitwise identical");
        assert_eq!(sl.report.levels.unwrap().barriers, level_barriers);
        assert_eq!(sm.report.levels.unwrap().barriers, merged_barriers);
        assert_eq!(sm.report.algorithm, "sparse DAG-partitioned parallel sweep");
        // Auto resolves to Merged here and the one-shot path matches.
        let auto = SolveRequest::lower().threads(4).plan_sparse(&m, 1).unwrap();
        let PlanBackend::Sparse {
            policy: auto_policy,
            ..
        } = auto.backend
        else {
            panic!("expected a sparse plan");
        };
        assert_eq!(auto_policy, SchedulePolicy::Merged);
        let sa = SolveRequest::lower()
            .threads(4)
            .solve_sparse_vec(&m, &b)
            .unwrap();
        assert_eq!(sa.x, sl.x);
    }

    #[test]
    fn sparse_transposed_and_residual() {
        let n = 400;
        let m = sgen::random_lower(n, 6, 11);
        let b = sgen::rhs_vec(n, 12);
        let sol = SolveRequest::lower()
            .transposed()
            .with_residual()
            .solve_sparse_vec(&m, &b)
            .unwrap();
        assert!(sol.report.residual.unwrap() < 1e-12);
        // Reference: solve the materialized transpose.
        let xt = m.transpose().solve(&b).unwrap();
        assert_eq!(sol.x, xt);
    }

    #[test]
    fn sparse_request_validates_against_matrix() {
        let m = sgen::random_lower(32, 3, 1);
        assert!(SolveRequest::upper().plan_sparse(&m, 1).is_err());
        assert!(SolveRequest::lower()
            .unit_diagonal()
            .plan_sparse(&m, 1)
            .is_err());
        assert!(SolveRequest::lower()
            .side(Side::Right)
            .plan_sparse(&m, 1)
            .is_err());
    }

    #[test]
    fn one_shot_reuse_plans_syncfree_with_zero_barriers() {
        // A declared one-shot solve must lower to the sync-free column
        // sweep on both a random fill and a deep narrow DAG: zero levels,
        // zero barriers in the plan *and* the measured report, no
        // analysis ever run, and an answer matching the level-scheduled
        // executor to rounding.
        for m in [
            sgen::random_lower(20_000, 8, 71),
            sgen::deep_narrow_lower(20_000, 4, 3, 72),
        ] {
            let b = sgen::rhs_vec(m.n(), 73);
            let plan = SolveRequest::lower()
                .threads(4)
                .reuse(1)
                .plan_sparse(&m, 1)
                .unwrap();
            let PlanBackend::Sparse {
                workers,
                policy,
                levels,
                super_levels,
                predicted_barriers,
                ..
            } = plan.backend
            else {
                panic!("expected a sparse plan");
            };
            assert_eq!(policy, SchedulePolicy::SyncFree);
            assert!(workers > 1, "a pinned budget of 4 must parallelize");
            assert_eq!(levels, 0);
            assert_eq!(super_levels, 0);
            assert_eq!(predicted_barriers, 0);
            assert_eq!(plan.algorithm_name(), "sparse sync-free column sweep");
            let cost = plan.predicted_cost.expect("sparse plans carry a cost");
            assert_eq!(cost.latency, 0.0, "zero barriers price zero latency");
            assert!(cost.bandwidth > 0.0, "sync words are billed instead");
            let sol = plan.execute_sparse_vec(&m, &b).unwrap();
            let lr = sol.report.levels.unwrap();
            assert_eq!(lr.policy, SchedulePolicy::SyncFree);
            assert_eq!(lr.barriers, 0, "sync-free execution crosses no barrier");
            assert_eq!(lr.levels, 0);
            assert_eq!(sol.report.algorithm, "sparse sync-free column sweep");
            assert_eq!(m.analysis_count(), 0, "one-shot plans never analyze");
            assert_eq!(m.merged_analysis_count(), 0);
            // The answer matches the barriered executor to rounding.
            let reference = SolveRequest::lower()
                .threads(4)
                .policy(SchedulePolicy::Level)
                .solve_sparse_vec(&m, &b)
                .unwrap();
            let max_diff = sol
                .x
                .iter()
                .zip(&reference.x)
                .map(|(got, want)| (got - want).abs())
                .fold(0.0_f64, f64::max);
            assert!(max_diff < 1e-12, "sync-free vs level: {max_diff}");
        }
        // A declared 100-apply loop amortizes the analysis and keeps the
        // barriered merged schedule on the barrier-sensitive deep DAG.
        let m = sgen::deep_narrow_lower(20_000, 4, 3, 72);
        let plan = SolveRequest::lower()
            .threads(4)
            .reuse(100)
            .plan_sparse(&m, 1)
            .unwrap();
        let PlanBackend::Sparse {
            policy,
            predicted_barriers,
            ..
        } = plan.backend
        else {
            panic!("expected a sparse plan");
        };
        assert_eq!(policy, SchedulePolicy::Merged);
        assert!(predicted_barriers > 0);
        let cost = plan.predicted_cost.unwrap();
        assert!(cost.latency > 0.0, "barriered plans bill their barriers");
    }

    #[test]
    fn sparse_sequential_plan_never_analyzes() {
        let m = sgen::random_lower(300, 3, 5);
        let plan = SolveRequest::lower().threads(1).plan_sparse(&m, 1).unwrap();
        let b = sgen::rhs_vec(300, 6);
        let sol = plan.execute_sparse_vec(&m, &b).unwrap();
        assert_eq!(sol.report.levels.unwrap().workers, 1);
        assert_eq!(sol.report.levels.unwrap().barriers, 0);
        assert_eq!(m.analysis_count(), 0, "sequential plans stay analysis-free");
    }

    // -- distributed -------------------------------------------------------

    fn dist_instance(
        grid: &Grid2D,
        n: usize,
        k: usize,
        seed: u64,
    ) -> (DistMatrix, DistMatrix, Matrix) {
        let l_global = gen::well_conditioned_lower(n, seed);
        let x_true = gen::rhs(n, k, seed + 1);
        let b_global = dense::matmul(&l_global, &x_true);
        (
            DistMatrix::from_global(grid, &l_global),
            DistMatrix::from_global(grid, &b_global),
            x_true,
        )
    }

    #[test]
    fn distributed_auto_plan_is_inspectable_and_executes() {
        let n = 64;
        let k = 16;
        let out = Machine::new(4, MachineParams::cluster())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let (l, b, x_true) = dist_instance(&grid, n, k, 21);
                let req = SolveRequest::lower().with_residual();
                let plan = req.plan_distributed(n, k, comm.size()).unwrap();
                // Auto resolved to the planner's iterative configuration.
                let PlanBackend::Distributed {
                    algorithm, params, ..
                } = &plan.backend
                else {
                    panic!("expected a distributed plan");
                };
                assert!(matches!(algorithm, Algorithm::IterativeInversion(_)));
                let params = params.clone().expect("auto records the planner plan");
                assert_eq!(params.it_inv.p1 * params.it_inv.p1 * params.it_inv.p2, 4);
                assert!(plan.predicted_cost.is_some());
                assert!(plan.regime.is_some());
                let sol = plan.execute_distributed(&l, &b).unwrap();
                let err = dense::norms::rel_diff(&sol.x.to_global(), &x_true);
                let phases = sol.report.phases.expect("it_inv attaches phases");
                let comm_delta = sol.report.comm.expect("distributed attaches counters");
                (
                    err,
                    sol.report.residual.unwrap(),
                    phases.total().flops,
                    comm_delta.flops,
                    sol.report.flops.get(),
                )
            })
            .unwrap();
        for (err, residual, phase_flops, comm_flops, report_flops) in out.results {
            assert!(err < 1e-8, "{err}");
            assert!(residual < 1e-10);
            assert_eq!(comm_flops, report_flops);
            assert!(phase_flops > 0 && phase_flops <= report_flops);
        }
    }

    #[test]
    fn every_distributed_algorithm_feeds_the_same_report() {
        let n = 64;
        let k = 16;
        for alg in [
            Algorithm::Recursive { base_size: 16 },
            Algorithm::IterativeInversion(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 16,
                inv_base: 8,
            }),
            Algorithm::Wavefront,
        ] {
            let out = Machine::new(4, MachineParams::unit())
                .run(move |comm| {
                    let grid = Grid2D::new(comm, 2, 2).unwrap();
                    let (l, b, x_true) = dist_instance(&grid, n, k, 31);
                    let sol = SolveRequest::lower()
                        .algorithm(alg)
                        .solve_distributed(&l, &b)
                        .unwrap();
                    let err = dense::norms::rel_diff(&sol.x.to_global(), &x_true);
                    (
                        err,
                        sol.report.comm.is_some(),
                        sol.report.flops.get(),
                        sol.report.phases.is_some(),
                    )
                })
                .unwrap();
            let expect_phases = matches!(alg, Algorithm::IterativeInversion(_));
            for (err, has_comm, flops, has_phases) in out.results {
                assert!(err < 1e-8, "{alg:?}: {err}");
                assert!(has_comm, "{alg:?} must report its cost counters");
                assert_eq!(has_phases, expect_phases);
                let _ = flops;
            }
        }
    }

    #[test]
    fn distributed_transposed_and_upper_requests() {
        let n = 32;
        let k = 8;
        let out = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                // Lᵀ·X = B via the transposed request on the stored L.
                let l_global = gen::well_conditioned_lower(n, 41);
                let x_true = gen::rhs(n, k, 42);
                let bt_global = dense::gemm::matmul(&l_global.transpose(), &x_true);
                let l = DistMatrix::from_global(&grid, &l_global);
                let bt = DistMatrix::from_global(&grid, &bt_global);
                let sol_t = SolveRequest::lower()
                    .transposed()
                    .algorithm(Algorithm::Recursive { base_size: 8 })
                    .with_residual()
                    .solve_distributed(&l, &bt)
                    .unwrap();
                let err_t = dense::norms::rel_diff(&sol_t.x.to_global(), &x_true);

                // U·X = B with an upper request.
                let u_global = gen::well_conditioned_upper(n, 43);
                let xu_true = gen::rhs(n, k, 44);
                let bu_global = dense::matmul(&u_global, &xu_true);
                let u = DistMatrix::from_global(&grid, &u_global);
                let bu = DistMatrix::from_global(&grid, &bu_global);
                let sol_u = SolveRequest::upper()
                    .algorithm(Algorithm::Recursive { base_size: 8 })
                    .solve_distributed(&u, &bu)
                    .unwrap();
                let err_u = dense::norms::rel_diff(&sol_u.x.to_global(), &xu_true);
                (err_t, sol_t.report.residual.unwrap(), err_u)
            })
            .unwrap();
        for (err_t, res_t, err_u) in out.results {
            assert!(err_t < 1e-8, "transposed distributed solve: {err_t}");
            assert!(res_t < 1e-10);
            assert!(err_u < 1e-8, "upper distributed solve: {err_u}");
        }
    }

    #[test]
    fn repeated_transposed_solves_redistribute_once() {
        // The transpose all-to-all must run on the first transposed solve
        // only; later solves reuse the cached DistMatrix::transposed — the
        // repeated-backward-substitution pattern of the Cholesky/LU apps.
        let n = 32;
        let k = 8;
        let out = Machine::new(4, MachineParams::cluster())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_global = gen::well_conditioned_lower(n, 61);
                let x_true = gen::rhs(n, k, 62);
                let bt_global = dense::gemm::matmul(&l_global.transpose(), &x_true);
                let l = DistMatrix::from_global(&grid, &l_global);
                let bt = DistMatrix::from_global(&grid, &bt_global);
                let req = SolveRequest::lower()
                    .transposed()
                    .algorithm(Algorithm::Recursive { base_size: 8 });
                let s1 = req.solve_distributed(&l, &bt).unwrap();
                let count_after_first = l.transpose_count();
                let s2 = req.solve_distributed(&l, &bt).unwrap();
                let err = dense::norms::rel_diff(&s2.x.to_global(), &x_true);
                (
                    err,
                    count_after_first,
                    l.transpose_count(),
                    s1.report.comm.unwrap().words_sent,
                    s2.report.comm.unwrap().words_sent,
                    s1.x.to_global() == s2.x.to_global(),
                )
            })
            .unwrap();
        for (err, first, second, words1, words2, same) in out.results {
            assert!(err < 1e-8, "{err}");
            assert_eq!(first, 1, "first transposed solve runs the all-to-all");
            assert_eq!(second, 1, "second solve must reuse the cached transpose");
            assert!(
                words2 <= words1,
                "cached transpose must not re-communicate: {words2} vs {words1}"
            );
            assert!(same);
        }
    }

    #[test]
    fn distributed_unit_diagonal_ignores_stored_diagonal() {
        let n = 32;
        let k = 8;
        let out = Machine::new(4, MachineParams::unit())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let mut l_global = gen::well_conditioned_lower(n, 51);
                for i in 0..n {
                    l_global[(i, i)] = 1.0;
                }
                let x_true = gen::rhs(n, k, 52);
                let b_global = dense::matmul(&l_global, &x_true);
                // Store garbage on the diagonal; Diag::Unit must ignore it.
                let mut l_garbage = l_global.clone();
                for i in 0..n {
                    l_garbage[(i, i)] = 1e6;
                }
                let l = DistMatrix::from_global(&grid, &l_garbage);
                let b = DistMatrix::from_global(&grid, &b_global);
                let request = SolveRequest::lower()
                    .unit_diagonal()
                    .algorithm(Algorithm::Wavefront);
                let sol = request.solve_distributed(&l, &b).unwrap();
                // Repeated unit-diagonal solves reuse the cached overlay:
                // it is built exactly once per DistMatrix, not per solve.
                let sol2 = request.solve_distributed(&l, &b).unwrap();
                (
                    dense::norms::rel_diff(&sol.x.to_global(), &x_true),
                    sol.x.rel_diff(&sol2.x).unwrap(),
                    l.unit_overlay_count(),
                )
            })
            .unwrap();
        for (err, repeat_diff, overlays) in out.results {
            assert!(err < 1e-8, "{err}");
            assert_eq!(repeat_diff, 0.0, "repeated solves must be bitwise equal");
            assert_eq!(
                overlays, 1,
                "unit overlay must be built once, not per solve"
            );
        }
    }

    #[test]
    fn right_side_requests_are_rejected_off_the_dense_backend() {
        assert!(SolveRequest::lower()
            .side(Side::Right)
            .plan_distributed(32, 8, 4)
            .is_err());
    }

    #[test]
    fn plan_display_is_informative() {
        let plan = SolveRequest::lower().plan_dense(128, 8).unwrap();
        let s = plan.to_string();
        assert!(s.contains("dense"));
        assert!(s.contains("128"));
        let m = sgen::random_lower(64, 2, 3);
        let sp = SolveRequest::lower().plan_sparse(&m, 1).unwrap();
        assert!(sp.to_string().contains("nnz"));
        let dp = SolveRequest::lower().plan_distributed(256, 64, 16).unwrap();
        assert!(dp.to_string().contains("p = 16"));
    }
}
