//! # `catrsm` — communication-avoiding parallel TRSM
//!
//! A from-scratch Rust reproduction of
//! *"Communication-Avoiding Parallel Algorithms for Solving Triangular
//! Systems of Linear Equations"* (Wicky, Solomonik, Hoefler, IPDPS 2017).
//!
//! The crate implements every algorithm the paper describes, on top of the
//! simulated distributed-memory machine of the `simnet` crate (which measures
//! messages `S`, words `W`, flops `F` and virtual time along the critical
//! path in the α–β–γ model the paper uses):
//!
//! | paper section | algorithm | module |
//! |---|---|---|
//! | III  | 3D matrix multiplication from a 2D cyclic layout | [`mm3d`] |
//! | IV   | recursive TRSM (the "standard" baseline)        | [`rec_trsm`] |
//! | V    | recursive distributed triangular inversion       | [`tri_inv`] |
//! | VI-A | block-diagonal inverter                          | [`diag_inv`] |
//! | VI   | iterative inversion-based TRSM (main contribution) | [`it_inv_trsm`] |
//! | VIII | a-priori parameter / processor-grid selection    | [`planner`] |
//! | —    | 2D wavefront TRSM (extra sanity baseline)        | [`wavefront`] |
//! | I    | applications: distributed Cholesky and LU solvers | [`apps`] |
//!
//! The high-level entry point is [`api::solve_lower`], which picks the
//! algorithm and its parameters from the cost model unless told otherwise.
//!
//! ## Example
//!
//! ```
//! use simnet::{Machine, MachineParams};
//! use pgrid::{Grid2D, DistMatrix};
//! use catrsm::api::{solve_lower, Algorithm};
//!
//! let n = 64;
//! let k = 16;
//! let out = Machine::new(4, MachineParams::cluster())
//!     .run(|comm| {
//!         let grid = Grid2D::new(comm, 2, 2).unwrap();
//!         let l_global = dense::gen::well_conditioned_lower(n, 7);
//!         let x_true = dense::gen::rhs(n, k, 8);
//!         let b_global = dense::matmul(&l_global, &x_true);
//!         let l = DistMatrix::from_global(&grid, &l_global);
//!         let b = DistMatrix::from_global(&grid, &b_global);
//!         let x = solve_lower(&l, &b, Algorithm::Auto).unwrap();
//!         // Compare against the sequential solution.
//!         let x_ref = DistMatrix::from_global(&grid, &x_true);
//!         x.rel_diff(&x_ref).unwrap()
//!     })
//!     .unwrap();
//! assert!(out.results.iter().all(|&d| d < 1e-8));
//! ```

pub mod api;
pub mod apps;
pub mod diag_inv;
pub mod error;
pub mod it_inv_trsm;
pub mod mm3d;
pub mod planner;
pub mod rec_trsm;
pub mod tri_inv;
pub mod verify;
pub mod wavefront;

pub use api::{solve_lower, solve_upper, Algorithm};
pub use error::TrsmError;
pub use it_inv_trsm::{ItInvConfig, PhaseBreakdown};
pub use mm3d::MmConfig;
pub use planner::Plan;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TrsmError>;
