//! # `catrsm` — communication-avoiding parallel TRSM
//!
//! A from-scratch Rust reproduction of
//! *"Communication-Avoiding Parallel Algorithms for Solving Triangular
//! Systems of Linear Equations"* (Wicky, Solomonik, Hoefler, IPDPS 2017).
//!
//! The crate implements every algorithm the paper describes, on top of the
//! simulated distributed-memory machine of the `simnet` crate (which measures
//! messages `S`, words `W`, flops `F` and virtual time along the critical
//! path in the α–β–γ model the paper uses):
//!
//! | paper section | algorithm | module |
//! |---|---|---|
//! | III  | 3D matrix multiplication from a 2D cyclic layout | [`mm3d`] |
//! | IV   | recursive TRSM (the "standard" baseline)        | [`rec_trsm`] |
//! | V    | recursive distributed triangular inversion       | [`tri_inv`] |
//! | VI-A | block-diagonal inverter                          | [`diag_inv`] |
//! | VI   | iterative inversion-based TRSM (main contribution) | [`it_inv_trsm`] |
//! | VIII | a-priori parameter / processor-grid selection    | [`planner`] |
//! | —    | 2D wavefront TRSM (extra sanity baseline)        | [`wavefront`] |
//! | I    | applications: distributed Cholesky and LU solvers | [`apps`] |
//!
//! The high-level entry point is the staged API of [`solve`]:
//! a [`SolveRequest`] (triangle, [`dense::Transpose`], [`dense::Diag`],
//! pins) lowers to an inspectable [`SolvePlan`] — the chosen algorithm plus
//! the Section VIII cost prediction — which executes into a [`Solution`]
//! whose [`SolveReport`] uniformly carries the measured flops, this rank's
//! communication counters and (for the iterative algorithm) the per-phase
//! breakdown.  The same request type drives the local dense kernels and the
//! sparse level-scheduled executors, so one call convention covers every
//! backend; the legacy [`api::solve_lower`] / [`api::solve_upper`] shims
//! remain for older call sites.
//!
//! ## Example
//!
//! ```
//! use simnet::{Machine, MachineParams};
//! use pgrid::{Grid2D, DistMatrix};
//! use catrsm::SolveRequest;
//!
//! let n = 64;
//! let k = 16;
//! let out = Machine::new(4, MachineParams::cluster())
//!     .run(|comm| {
//!         let grid = Grid2D::new(comm, 2, 2).unwrap();
//!         let l_global = dense::gen::well_conditioned_lower(n, 7);
//!         let x_true = dense::gen::rhs(n, k, 8);
//!         let b_global = dense::matmul(&l_global, &x_true);
//!         let l = DistMatrix::from_global(&grid, &l_global);
//!         let b = DistMatrix::from_global(&grid, &b_global);
//!         // Plan first (inspectable: chosen algorithm + predicted cost)…
//!         let plan = SolveRequest::lower()
//!             .plan_distributed(n, k, comm.size())
//!             .unwrap();
//!         // …then execute; the report carries the measured counters.
//!         let sol = plan.execute_distributed(&l, &b).unwrap();
//!         let x_ref = DistMatrix::from_global(&grid, &x_true);
//!         (sol.x.rel_diff(&x_ref).unwrap(), sol.report.flops.get())
//!     })
//!     .unwrap();
//! assert!(out.results.iter().all(|&(d, f)| d < 1e-8 && f > 0));
//! ```

pub mod api;
pub mod apps;
pub mod diag_inv;
pub mod error;
pub mod it_inv_trsm;
pub mod mm3d;
pub mod planner;
pub mod rec_trsm;
pub mod solve;
pub mod tri_inv;
pub mod verify;
pub mod wavefront;

#[allow(deprecated)]
pub use api::{solve_lower, solve_upper};
pub use api::{transpose_dist, Algorithm};
pub use costmodel::CostModelRev;
pub use error::TrsmError;
pub use it_inv_trsm::{ItInvConfig, PhaseBreakdown};
pub use mm3d::MmConfig;
pub use planner::Plan;
pub use solve::{
    plan_build_count, LevelReport, Plan as SolvePlan, PlanBackend, Solution, SolveReport,
    SolveRequest,
};
pub use sparse::SchedulePolicy;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TrsmError>;
