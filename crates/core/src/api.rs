//! High-level solver entry point.
//!
//! [`solve_lower`] solves `L·X = B` for a lower-triangular `L` distributed
//! over a processor grid, selecting the algorithm and its parameters from
//! the paper's cost model unless the caller pins them explicitly.

use crate::it_inv_trsm::{it_inv_trsm, ItInvConfig};
use crate::planner;
use crate::rec_trsm::{rec_trsm, RecTrsmConfig};
use crate::wavefront::wavefront_trsm;
use crate::Result;
use pgrid::DistMatrix;

/// Which TRSM algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Pick the iterative inversion-based algorithm with parameters from the
    /// Section VIII cost model (the paper's recommendation).
    Auto,
    /// The recursive baseline of Section IV with an explicit base-case size.
    Recursive {
        /// Dimension below which the recursion stops.
        base_size: usize,
    },
    /// The iterative inversion-based algorithm with explicit parameters.
    IterativeInversion(ItInvConfig),
    /// The row-fan-out baseline (Heath–Romine style).
    Wavefront,
}

/// Solve `U·X = B` for an **upper**-triangular `U`, returning `X` in the same
/// distribution as `B`.
///
/// The upper solve is reduced to a lower solve through the reversal
/// permutation `J` (reversing row and column order): `J·U·J` is lower
/// triangular, so `U·X = B ⟺ (J·U·J)·(J·X) = J·B`.  The permutations are
/// plain layout remappings (one keyed all-to-all each), so the asymptotic
/// costs are those of the underlying lower solve.
pub fn solve_upper(u: &DistMatrix, b: &DistMatrix, algorithm: Algorithm) -> Result<DistMatrix> {
    let u_rev = reverse_both(u);
    let b_rev = reverse_rows(b);
    let x_rev = solve_lower(&u_rev, &b_rev, algorithm)?;
    Ok(reverse_rows(&x_rev))
}

/// Reverse the row order of a distributed matrix (the permutation `J·A`).
pub fn reverse_rows(a: &DistMatrix) -> DistMatrix {
    let grid = a.grid().clone();
    let (rows, cols) = a.dims();
    let (pr, pc) = (grid.rows(), grid.cols());
    let received =
        pgrid::redist::remap_elements(a, |i, j| grid.rank_of((rows - 1 - i) % pr, j % pc), true);
    let mut out = DistMatrix::zeros(&grid, rows, cols);
    for (i, j, v) in received {
        let ri = rows - 1 - i;
        out.local_mut()[(ri / pr, j / pc)] = v;
    }
    out
}

/// Reverse both the row and the column order of a distributed matrix
/// (the permutation `J·A·J`).
pub fn reverse_both(a: &DistMatrix) -> DistMatrix {
    let grid = a.grid().clone();
    let (rows, cols) = a.dims();
    let (pr, pc) = (grid.rows(), grid.cols());
    let received = pgrid::redist::remap_elements(
        a,
        |i, j| grid.rank_of((rows - 1 - i) % pr, (cols - 1 - j) % pc),
        true,
    );
    let mut out = DistMatrix::zeros(&grid, rows, cols);
    for (i, j, v) in received {
        let ri = rows - 1 - i;
        let rj = cols - 1 - j;
        out.local_mut()[(ri / pr, rj / pc)] = v;
    }
    out
}

/// Solve `L·X = B`, returning `X` in the same distribution as `B`.
pub fn solve_lower(l: &DistMatrix, b: &DistMatrix, algorithm: Algorithm) -> Result<DistMatrix> {
    match algorithm {
        Algorithm::Auto => {
            let p = l.grid().comm().size();
            let plan = planner::plan(l.rows(), b.cols(), p);
            let (x, _) = it_inv_trsm(l, b, &plan.it_inv)?;
            Ok(x)
        }
        Algorithm::IterativeInversion(cfg) => {
            let (x, _) = it_inv_trsm(l, b, &cfg)?;
            Ok(x)
        }
        Algorithm::Recursive { base_size } => rec_trsm(
            l,
            b,
            &RecTrsmConfig {
                base_size,
                log_latency: true,
            },
        ),
        Algorithm::Wavefront => wavefront_trsm(l, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    fn solve_with(algorithm: Algorithm, n: usize, k: usize) -> Vec<f64> {
        Machine::new(4, MachineParams::cluster())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_global = gen::well_conditioned_lower(n, 21);
                let x_true = gen::rhs(n, k, 22);
                let b_global = dense::matmul(&l_global, &x_true);
                let l = DistMatrix::from_global(&grid, &l_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let x = solve_lower(&l, &b, algorithm).unwrap();
                dense::norms::rel_diff(&x.to_global(), &x_true)
            })
            .unwrap()
            .results
    }

    #[test]
    fn auto_selects_a_working_configuration() {
        for (n, k) in [(64usize, 16usize), (32, 64), (128, 4)] {
            for d in solve_with(Algorithm::Auto, n, k) {
                assert!(d < 1e-8, "auto n={n} k={k}: {d}");
            }
        }
    }

    #[test]
    fn upper_solve_via_reversal() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let n = 32;
                let k = 8;
                let u_global = gen::well_conditioned_upper(n, 13);
                let x_true = gen::rhs(n, k, 14);
                let b_global = dense::matmul(&u_global, &x_true);
                let u = DistMatrix::from_global(&grid, &u_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let x = solve_upper(&u, &b, Algorithm::Recursive { base_size: 8 }).unwrap();
                dense::norms::rel_diff(&x.to_global(), &x_true)
            })
            .unwrap();
        assert!(out.results.into_iter().all(|d| d < 1e-8));
    }

    #[test]
    fn reversal_helpers_are_involutions() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let a = DistMatrix::from_fn(&grid, 10, 6, |i, j| (i * 6 + j) as f64);
                let rr = reverse_rows(&reverse_rows(&a));
                let rb = reverse_both(&reverse_both(&a));
                let first = reverse_rows(&a).to_global()[(0, 0)];
                (rr.rel_diff(&a).unwrap(), rb.rel_diff(&a).unwrap(), first)
            })
            .unwrap();
        for (rr, rb, first) in out.results {
            assert_eq!(rr, 0.0);
            assert_eq!(rb, 0.0);
            // Row 0 of the row-reversed matrix is the old last row.
            assert_eq!(first, (9 * 6) as f64);
        }
    }

    #[test]
    fn all_algorithms_agree() {
        let n = 64;
        let k = 16;
        for alg in [
            Algorithm::Auto,
            Algorithm::Recursive { base_size: 16 },
            Algorithm::IterativeInversion(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 16,
                inv_base: 8,
            }),
            Algorithm::Wavefront,
        ] {
            for d in solve_with(alg, n, k) {
                assert!(d < 1e-8, "{alg:?}: {d}");
            }
        }
    }
}
