//! High-level solver entry points (legacy shims) and the distributed layout
//! permutations they are built on.
//!
//! The staged API of [`crate::solve`] ([`crate::SolveRequest`] →
//! [`crate::SolvePlan`] → [`crate::Solution`]) is the primary solver
//! surface; [`solve_lower`] / [`solve_upper`] remain as thin deprecated
//! shims so pre-existing call sites keep compiling.  The layout
//! permutations ([`reverse_rows`], [`reverse_both`], [`transpose_dist`]) —
//! plain keyed all-to-all remappings — live here and are shared with the
//! staged executor.

use crate::it_inv_trsm::ItInvConfig;
use crate::solve::SolveRequest;
use crate::Result;
use pgrid::DistMatrix;

/// Which TRSM algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Pick the iterative inversion-based algorithm with parameters from the
    /// Section VIII cost model (the paper's recommendation).
    Auto,
    /// The recursive baseline of Section IV with an explicit base-case size.
    Recursive {
        /// Dimension below which the recursion stops.
        base_size: usize,
    },
    /// The iterative inversion-based algorithm with explicit parameters.
    IterativeInversion(ItInvConfig),
    /// The row-fan-out baseline (Heath–Romine style).
    Wavefront,
}

/// Solve `U·X = B` for an **upper**-triangular `U`, returning `X` in the same
/// distribution as `B`.
///
/// The upper solve is reduced to a lower solve through the reversal
/// permutation `J` (reversing row and column order): `J·U·J` is lower
/// triangular, so `U·X = B ⟺ (J·U·J)·(J·X) = J·B`.  The permutations are
/// plain layout remappings (one keyed all-to-all each), so the asymptotic
/// costs are those of the underlying lower solve.
#[deprecated(
    since = "0.1.0",
    note = "use `SolveRequest::upper().algorithm(algorithm).solve_distributed(u, b)`"
)]
pub fn solve_upper(u: &DistMatrix, b: &DistMatrix, algorithm: Algorithm) -> Result<DistMatrix> {
    Ok(SolveRequest::upper()
        .algorithm(algorithm)
        .solve_distributed(u, b)?
        .x)
}

/// Reverse the row order of a distributed matrix (the permutation `J·A`).
pub fn reverse_rows(a: &DistMatrix) -> Result<DistMatrix> {
    let grid = a.grid().clone();
    let (rows, cols) = a.dims();
    let (pr, pc) = (grid.rows(), grid.cols());
    let received =
        pgrid::redist::remap_elements(a, |i, j| grid.rank_of((rows - 1 - i) % pr, j % pc), true)?;
    let mut out = DistMatrix::zeros(&grid, rows, cols);
    for (i, j, v) in received {
        let ri = rows - 1 - i;
        out.local_mut()[(ri / pr, j / pc)] = v;
    }
    Ok(out)
}

/// Reverse both the row and the column order of a distributed matrix
/// (the permutation `J·A·J`).
pub fn reverse_both(a: &DistMatrix) -> Result<DistMatrix> {
    let grid = a.grid().clone();
    let (rows, cols) = a.dims();
    let (pr, pc) = (grid.rows(), grid.cols());
    let received = pgrid::redist::remap_elements(
        a,
        |i, j| grid.rank_of((rows - 1 - i) % pr, (cols - 1 - j) % pc),
        true,
    )?;
    let mut out = DistMatrix::zeros(&grid, rows, cols);
    for (i, j, v) in received {
        let ri = rows - 1 - i;
        let rj = cols - 1 - j;
        out.local_mut()[(ri / pr, rj / pc)] = v;
    }
    Ok(out)
}

/// Transpose a distributed matrix (one keyed all-to-all redistribution:
/// element `(i, j)` moves to the owner of `(j, i)`).
///
/// This is what lets the staged API solve `Lᵀ·X = B` on a stored `L`: the
/// transpose is a layout remapping with the cost of the redistributions the
/// algorithms already perform, not a change to any solver kernel.
pub fn transpose_dist(a: &DistMatrix) -> Result<DistMatrix> {
    Ok(pgrid::redist::transpose(a, true)?)
}

/// Solve `L·X = B`, returning `X` in the same distribution as `B`.
#[deprecated(
    since = "0.1.0",
    note = "use `SolveRequest::lower().algorithm(algorithm).solve_distributed(l, b)` \
            (which also returns the plan's report)"
)]
pub fn solve_lower(l: &DistMatrix, b: &DistMatrix, algorithm: Algorithm) -> Result<DistMatrix> {
    Ok(SolveRequest::lower()
        .algorithm(algorithm)
        .solve_distributed(l, b)?
        .x)
}

#[cfg(test)]
mod tests {
    // The deprecated shims are exercised on purpose: pre-existing call
    // sites must keep solving exactly as before through the staged API.
    #![allow(deprecated)]

    use super::*;
    use dense::gen;
    use pgrid::Grid2D;
    use simnet::{Machine, MachineParams};

    fn solve_with(algorithm: Algorithm, n: usize, k: usize) -> Vec<f64> {
        Machine::new(4, MachineParams::cluster())
            .run(move |comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let l_global = gen::well_conditioned_lower(n, 21);
                let x_true = gen::rhs(n, k, 22);
                let b_global = dense::matmul(&l_global, &x_true);
                let l = DistMatrix::from_global(&grid, &l_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let x = solve_lower(&l, &b, algorithm).unwrap();
                dense::norms::rel_diff(&x.to_global(), &x_true)
            })
            .unwrap()
            .results
    }

    #[test]
    fn auto_selects_a_working_configuration() {
        for (n, k) in [(64usize, 16usize), (32, 64), (128, 4)] {
            for d in solve_with(Algorithm::Auto, n, k) {
                assert!(d < 1e-8, "auto n={n} k={k}: {d}");
            }
        }
    }

    #[test]
    fn upper_solve_via_reversal() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let n = 32;
                let k = 8;
                let u_global = gen::well_conditioned_upper(n, 13);
                let x_true = gen::rhs(n, k, 14);
                let b_global = dense::matmul(&u_global, &x_true);
                let u = DistMatrix::from_global(&grid, &u_global);
                let b = DistMatrix::from_global(&grid, &b_global);
                let x = solve_upper(&u, &b, Algorithm::Recursive { base_size: 8 }).unwrap();
                dense::norms::rel_diff(&x.to_global(), &x_true)
            })
            .unwrap();
        assert!(out.results.into_iter().all(|d| d < 1e-8));
    }

    #[test]
    fn reversal_helpers_are_involutions() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let a = DistMatrix::from_fn(&grid, 10, 6, |i, j| (i * 6 + j) as f64);
                let rr = reverse_rows(&reverse_rows(&a).unwrap()).unwrap();
                let rb = reverse_both(&reverse_both(&a).unwrap()).unwrap();
                let first = reverse_rows(&a).unwrap().to_global()[(0, 0)];
                (rr.rel_diff(&a).unwrap(), rb.rel_diff(&a).unwrap(), first)
            })
            .unwrap();
        for (rr, rb, first) in out.results {
            assert_eq!(rr, 0.0);
            assert_eq!(rb, 0.0);
            // Row 0 of the row-reversed matrix is the old last row.
            assert_eq!(first, (9 * 6) as f64);
        }
    }

    #[test]
    fn transpose_dist_is_an_involution_and_matches_local_transpose() {
        let out = Machine::new(4, MachineParams::unit())
            .run(|comm| {
                let grid = Grid2D::new(comm, 2, 2).unwrap();
                let a = DistMatrix::from_fn(&grid, 10, 6, |i, j| (i * 6 + j) as f64);
                let t = transpose_dist(&a).unwrap();
                let tt = transpose_dist(&t).unwrap();
                let t_ok = t.to_global() == a.to_global().transpose();
                let round_trip = tt.rel_diff(&a).unwrap();
                (t_ok, round_trip)
            })
            .unwrap();
        for (t_ok, round_trip) in out.results {
            assert!(t_ok, "distributed transpose must equal the local one");
            assert_eq!(round_trip, 0.0);
        }
    }

    #[test]
    fn all_algorithms_agree() {
        let n = 64;
        let k = 16;
        for alg in [
            Algorithm::Auto,
            Algorithm::Recursive { base_size: 16 },
            Algorithm::IterativeInversion(ItInvConfig {
                p1: 2,
                p2: 1,
                n0: 16,
                inv_base: 8,
            }),
            Algorithm::Wavefront,
        ] {
            for d in solve_with(alg, n, k) {
                assert!(d < 1e-8, "{alg:?}: {d}");
            }
        }
    }
}
