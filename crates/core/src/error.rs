//! Error type for the distributed TRSM algorithms.

use std::fmt;

/// Errors surfaced by the distributed algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum TrsmError {
    /// A problem/grid parameter violates a divisibility or shape requirement
    /// of the algorithm.
    InvalidConfig {
        /// Which algorithm complained.
        algorithm: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Error from the dense local kernels.
    Dense(dense::DenseError),
    /// Error from the sparse triangular kernels.
    Sparse(sparse::SparseError),
    /// Error from the grid / distribution layer.
    Grid(pgrid::GridError),
    /// Error from the simulated machine.
    Sim(simnet::SimError),
    /// An internal invariant of an algorithm was violated (a bug in the
    /// solver, not in the caller's inputs); surfaced as a typed error
    /// instead of a panic so distributed runs fail cleanly.
    Internal {
        /// Which algorithm detected the violation.
        algorithm: &'static str,
        /// Human-readable description of the broken invariant.
        reason: String,
    },
}

impl fmt::Display for TrsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrsmError::InvalidConfig { algorithm, reason } => {
                write!(f, "{algorithm}: invalid configuration: {reason}")
            }
            TrsmError::Dense(e) => write!(f, "dense kernel error: {e}"),
            TrsmError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            TrsmError::Grid(e) => write!(f, "grid error: {e}"),
            TrsmError::Sim(e) => write!(f, "simulator error: {e}"),
            TrsmError::Internal { algorithm, reason } => {
                write!(f, "{algorithm}: internal invariant violated: {reason}")
            }
        }
    }
}

impl std::error::Error for TrsmError {}

impl From<dense::DenseError> for TrsmError {
    fn from(e: dense::DenseError) -> Self {
        TrsmError::Dense(e)
    }
}

impl From<sparse::SparseError> for TrsmError {
    fn from(e: sparse::SparseError) -> Self {
        TrsmError::Sparse(e)
    }
}

impl From<pgrid::GridError> for TrsmError {
    fn from(e: pgrid::GridError) -> Self {
        TrsmError::Grid(e)
    }
}

impl From<simnet::SimError> for TrsmError {
    fn from(e: simnet::SimError) -> Self {
        TrsmError::Sim(e)
    }
}

/// Convenience constructor for configuration errors.
pub fn config_error(algorithm: &'static str, reason: impl Into<String>) -> TrsmError {
    TrsmError::InvalidConfig {
        algorithm,
        reason: reason.into(),
    }
}

/// Convenience constructor for internal-invariant errors.
pub fn internal_error(algorithm: &'static str, reason: impl Into<String>) -> TrsmError {
    TrsmError::Internal {
        algorithm,
        reason: reason.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = config_error("mm3d", "n must be divisible by the grid");
        assert!(e.to_string().contains("mm3d"));
        let e: TrsmError = dense::DenseError::NotSquare {
            op: "x",
            dims: (2, 3),
        }
        .into();
        assert!(e.to_string().contains("dense"));
        let e: TrsmError = simnet::SimError::EmptyMachine.into();
        assert!(e.to_string().contains("simulator"));
        let e: TrsmError = pgrid::GridError::GridMismatch { op: "y" }.into();
        assert!(e.to_string().contains("grid"));
    }
}
